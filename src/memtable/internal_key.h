// Internal key encoding: user_key ⊕ fixed64(sequence << 8 | type), ordered by
// user key ascending then sequence descending so the newest version of a key
// sorts first. Shared by the memtable, PM tables and SSTables.

#ifndef PMBLADE_MEMTABLE_INTERNAL_KEY_H_
#define PMBLADE_MEMTABLE_INTERNAL_KEY_H_

#include <cstdint>
#include <string>

#include "util/comparator.h"
#include "util/slice.h"

namespace pmblade {

using SequenceNumber = uint64_t;

/// Highest sequence number usable (56 bits; the low byte packs the type).
constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// Sentinel used when seeking: kTypeValue sorts after kTypeDeletion within
/// the packed tag, and we want the *first* entry >= (key, seq), so lookups
/// seek with the largest tag for the target sequence.
constexpr ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline SequenceNumber UnpackSequence(uint64_t packed) { return packed >> 8; }
inline ValueType UnpackType(uint64_t packed) {
  return static_cast<ValueType>(packed & 0xff);
}

/// A parsed internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

/// Appends the encoded internal key for (user_key, seq, type) to *result.
void AppendInternalKey(std::string* result, const Slice& user_key,
                       SequenceNumber seq, ValueType type);

/// Splits an encoded internal key; returns false if malformed (< 8 bytes).
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// The user-key portion of an encoded internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// The packed (seq, type) tag of an encoded internal key.
uint64_t ExtractTag(const Slice& internal_key);

/// Orders internal keys: user key ascending (per user comparator), then tag
/// descending (newer versions first).
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const override;
  const char* Name() const override {
    return "pmblade.InternalKeyComparator";
  }
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// Owning internal-key helper for boundary bookkeeping (smallest/largest of
/// a table, compaction ranges).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber seq, ValueType type) {
    AppendInternalKey(&rep_, user_key, seq, type);
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }
  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

/// A LookupKey bundles the forms of a key a read needs: the internal seek key
/// (user_key + tag for snapshot `seq`) and the bare user key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber seq);

  Slice internal_key() const { return Slice(rep_); }
  Slice user_key() const { return Slice(rep_.data(), rep_.size() - 8); }

 private:
  std::string rep_;
};

}  // namespace pmblade

#endif  // PMBLADE_MEMTABLE_INTERNAL_KEY_H_
