#include "memtable/wal.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {
namespace wal {

Writer::Writer(WritableFile* dest, uint64_t dest_length)
    : dest_(dest), block_offset_(dest_length % kBlockSize) {
  for (int i = 0; i <= kMaxRecordType; ++i) {
    char t = static_cast<char>(i);
    type_crc_[i] = crc32c::Value(&t, 1);
  }
}

Status Writer::AddRecord(const Slice& record) {
  const char* ptr = record.data();
  size_t left = record.size();

  Status s;
  bool begin = true;
  do {
    const size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Pad the block trailer with zeroes and move to a new block.
      if (leftover > 0) {
        static const char kZeroes[kHeaderSize] = {0};
        s = dest_->Append(Slice(kZeroes, leftover));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }

    const size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) type = kFullType;
    else if (begin) type = kFirstType;
    else if (end) type = kLastType;
    else type = kMiddleType;

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* ptr,
                                  size_t length) {
  char header[kHeaderSize];
  header[4] = static_cast<char>(length & 0xff);
  header[5] = static_cast<char>(length >> 8);
  header[6] = static_cast<char>(type);

  uint32_t crc = crc32c::Extend(type_crc_[type], ptr, length);
  EncodeFixed32(header, crc32c::Mask(crc));

  Status s = dest_->Append(Slice(header, kHeaderSize));
  if (s.ok()) {
    s = dest_->Append(Slice(ptr, length));
    if (s.ok()) s = dest_->Flush();
  }
  block_offset_ += kHeaderSize + length;
  return s;
}

Reader::Reader(SequentialFile* file, Reporter* reporter, bool checksum)
    : file_(file),
      reporter_(reporter),
      checksum_(checksum),
      backing_store_(new char[kBlockSize]) {}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  ReportDrop(bytes, Status::Corruption(reason));
}

void Reader::ReportDrop(uint64_t bytes, const Status& reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes), reason);
  }
}

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  Slice fragment;
  while (true) {
    const unsigned int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        *record = fragment;
        return true;

      case kFirstType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(), "missing start of record");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(), "missing start of record");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // Writer died mid-record; drop the partial tail.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default:
        ReportCorruption(fragment.size() + scratch->size(),
                         "unknown record type");
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < kHeaderSize) {
      if (!eof_) {
        buffer_.clear();
        Status status =
            file_->Read(kBlockSize, &buffer_, backing_store_.get());
        if (!status.ok()) {
          buffer_.clear();
          ReportDrop(kBlockSize, status);
          eof_ = true;
          return kEof;
        }
        if (buffer_.size() < kBlockSize) eof_ = true;
        continue;
      }
      // Truncated header at EOF: assume writer died mid-header.
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint8_t>(header[4]);
    const uint32_t b = static_cast<uint8_t>(header[5]);
    const unsigned int type = static_cast<uint8_t>(header[6]);
    const uint32_t length = a | (b << 8);
    if (kHeaderSize + length > buffer_.size()) {
      size_t drop_size = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Zeroed padding; skip the rest of the buffer.
      buffer_.clear();
      return kBadRecord;
    }

    if (checksum_) {
      uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
      uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
      if (actual_crc != expected_crc) {
        size_t drop_size = buffer_.size();
        buffer_.clear();
        ReportCorruption(drop_size, "checksum mismatch");
        return kBadRecord;
      }
    }

    *result = Slice(header + kHeaderSize, length);
    buffer_.remove_prefix(kHeaderSize + length);
    return type;
  }
}

}  // namespace wal
}  // namespace pmblade
