#include "memtable/txn_record.h"

#include "util/coding.h"

namespace pmblade {

namespace {
constexpr size_t kMagicSize = 8;
constexpr size_t kTagOffset = kMagicSize;
constexpr size_t kTxnIdOffset = kTagOffset + 1;
constexpr size_t kCommonSize = kTxnIdOffset + 8;  // magic | tag | txn_id
}  // namespace

bool IsTxnRecord(const Slice& record) {
  return record.size() >= kCommonSize &&
         DecodeFixed64(record.data()) == kTxnRecordMagic;
}

static void PutCommon(TxnRecordType type, uint64_t txn_id, std::string* out) {
  out->clear();
  PutFixed64(out, kTxnRecordMagic);
  out->push_back(static_cast<char>(type));
  PutFixed64(out, txn_id);
}

void EncodePrepareRecord(uint64_t txn_id,
                         const std::vector<uint32_t>& participants,
                         const Slice& batch_rep, std::string* out) {
  PutCommon(TxnRecordType::kPrepare, txn_id, out);
  PutFixed32(out, static_cast<uint32_t>(participants.size()));
  for (uint32_t shard : participants) PutFixed32(out, shard);
  out->append(batch_rep.data(), batch_rep.size());
}

void EncodeCommitRecord(uint64_t txn_id, uint64_t base_seq, std::string* out) {
  PutCommon(TxnRecordType::kCommit, txn_id, out);
  PutFixed64(out, base_seq);
}

void EncodeRollbackRecord(uint64_t txn_id, std::string* out) {
  PutCommon(TxnRecordType::kRollback, txn_id, out);
}

Status DecodeTxnRecord(const Slice& record, TxnRecord* out) {
  if (!IsTxnRecord(record)) {
    return Status::Corruption("not a txn record");
  }
  const uint8_t tag = static_cast<uint8_t>(record[kTagOffset]);
  out->txn_id = DecodeFixed64(record.data() + kTxnIdOffset);
  out->participants.clear();
  out->payload = Slice();
  out->base_seq = 0;
  switch (tag) {
    case static_cast<uint8_t>(TxnRecordType::kPrepare): {
      out->type = TxnRecordType::kPrepare;
      if (record.size() < kCommonSize + 4) {
        return Status::Corruption("truncated prepare record");
      }
      const uint32_t n = DecodeFixed32(record.data() + kCommonSize);
      const size_t payload_off = kCommonSize + 4 + 4ull * n;
      if (n == 0 || record.size() < payload_off) {
        return Status::Corruption("truncated prepare participant list");
      }
      out->participants.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->participants.push_back(
            DecodeFixed32(record.data() + kCommonSize + 4 + 4ull * i));
      }
      out->payload =
          Slice(record.data() + payload_off, record.size() - payload_off);
      return Status::OK();
    }
    case static_cast<uint8_t>(TxnRecordType::kCommit):
      out->type = TxnRecordType::kCommit;
      if (record.size() < kCommonSize + 8) {
        return Status::Corruption("truncated commit record");
      }
      out->base_seq = DecodeFixed64(record.data() + kCommonSize);
      return Status::OK();
    case static_cast<uint8_t>(TxnRecordType::kRollback):
      out->type = TxnRecordType::kRollback;
      return Status::OK();
    default:
      return Status::Corruption("unknown txn record tag");
  }
}

}  // namespace pmblade
