#include "memtable/write_batch.h"

#include "memtable/skiplist_memtable.h"
#include "util/coding.h"

namespace pmblade {

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  EncodeFixed32(rep_.data() + 8, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  EncodeFixed32(rep_.data() + 8, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& other) {
  if (other.Count() == 0) return;
  EncodeFixed32(rep_.data() + 8, Count() + other.Count());
  rep_.append(other.rep_.data() + kHeader, other.rep_.size() - kHeader);
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

SequenceNumber WriteBatch::Sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

void WriteBatch::SetContentsFrom(const Slice& contents) {
  rep_.assign(contents.data(), contents.size());
  if (rep_.size() < kHeader) Clear();
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  uint32_t found = 0;
  while (!input.empty()) {
    ++found;
    char tag = input[0];
    input.remove_prefix(1);
    Slice key, value;
    switch (tag) {
      case kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put");
        }
        handler->Put(key, value);
        break;
      case kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

namespace {
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(SequenceNumber seq, MemTable* mem)
      : sequence_(seq), mem_(mem) {}

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_++, kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_++, kTypeDeletion, key, Slice());
  }

 private:
  SequenceNumber sequence_;
  MemTable* mem_;
};
}  // namespace

Status WriteBatch::InsertInto(MemTable* mem) const {
  MemTableInserter inserter(Sequence(), mem);
  return Iterate(&inserter);
}

}  // namespace pmblade
