// WriteBatch: an atomic group of Put/Delete operations, serialized in the
// exact form written to the WAL so replay is byte-identical.

#ifndef PMBLADE_MEMTABLE_WRITE_BATCH_H_
#define PMBLADE_MEMTABLE_WRITE_BATCH_H_

#include <string>

#include "memtable/internal_key.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

class MemTable;

class WriteBatch {
 public:
  WriteBatch() { Clear(); }

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Appends all of `other`'s operations to this batch (group commit:
  /// the leader coalesces follower batches into one WAL record). The
  /// sequence header of `other` is ignored.
  void Append(const WriteBatch& other);

  /// Number of operations in the batch.
  uint32_t Count() const;

  /// Total serialized size in bytes.
  size_t ApproximateSize() const { return rep_.size(); }

  /// Callback-style traversal of the batch contents.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // ---- internal (WAL / memtable plumbing) ----

  /// Serialized representation: fixed64 base-sequence | fixed32 count |
  /// records (kTypeValue key value | kTypeDeletion key).
  const std::string& rep() const { return rep_; }
  void SetContentsFrom(const Slice& contents);

  SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);

  /// Applies the batch into `mem` with sequence numbers starting at
  /// Sequence().
  Status InsertInto(MemTable* mem) const;

 private:
  static constexpr size_t kHeader = 12;
  std::string rep_;
};

}  // namespace pmblade

#endif  // PMBLADE_MEMTABLE_WRITE_BATCH_H_
