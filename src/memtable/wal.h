// Write-ahead log in the LevelDB record format: the file is a sequence of
// 32 KiB blocks; each record carries crc32c, length and a type marking it as
// a full record or the first/middle/last fragment of a spanning record.
// The same reader/writer pair also backs the manifest.

#ifndef PMBLADE_MEMTABLE_WAL_H_
#define PMBLADE_MEMTABLE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {
namespace wal {

enum RecordType : uint8_t {
  kZeroType = 0,  // preallocated/zeroed space
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;

constexpr size_t kBlockSize = 32768;
/// crc32c (4) + length (2) + type (1)
constexpr size_t kHeaderSize = 4 + 2 + 1;

class Writer {
 public:
  /// Does not take ownership of `dest`; the file must be freshly created (or
  /// pass `dest_length` = current size to append).
  explicit Writer(WritableFile* dest, uint64_t dest_length = 0);

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  size_t block_offset_;
  uint32_t type_crc_[kMaxRecordType + 1];
};

class Reader {
 public:
  /// Interface for corruption reporting during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// Does not take ownership of `file` or `reporter` (both may outlive the
  /// Reader). If `checksum` is true, drops records failing CRC.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum = true);

  /// Reads the next complete logical record into *record (which may point
  /// into *scratch). Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  /// Return type extends RecordType with kEof and kBadRecord.
  static constexpr unsigned int kEof = kMaxRecordType + 1;
  static constexpr unsigned int kBadRecord = kMaxRecordType + 2;

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* file_;
  Reporter* reporter_;
  bool checksum_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_ = false;
};

}  // namespace wal
}  // namespace pmblade

#endif  // PMBLADE_MEMTABLE_WAL_H_
