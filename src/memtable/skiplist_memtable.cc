#include "memtable/skiplist_memtable.h"

#include "util/coding.h"

namespace pmblade {

// Entry layout in the arena (one blob per Add):
//   varint32 internal_key_len | internal_key bytes | varint32 value_len |
//   value bytes
// Node layout: entry pointer + height + next[height] atomic pointers.

struct MemTable::Node {
  const char* entry;  // encoded entry blob
  int height;

  Node* Next(int level) const {
    return next_[level].load(std::memory_order_acquire);
  }
  void SetNext(int level, Node* node) {
    next_[level].store(node, std::memory_order_release);
  }
  Node* NoBarrierNext(int level) const {
    return next_[level].load(std::memory_order_relaxed);
  }
  void NoBarrierSetNext(int level, Node* node) {
    next_[level].store(node, std::memory_order_relaxed);
  }

  // next_ is over-allocated to `height` entries.
  std::atomic<Node*> next_[1];
};

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), rnd_(0xdeadbeef) {
  head_ = NewNode(Slice(), kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) head_->NoBarrierSetNext(i, nullptr);
}

MemTable::~MemTable() = default;

MemTable::Node* MemTable::NewNode(const Slice& encoded_entry, int height) {
  char* entry_mem = nullptr;
  if (!encoded_entry.empty()) {
    entry_mem = arena_.Allocate(encoded_entry.size());
    memcpy(entry_mem, encoded_entry.data(), encoded_entry.size());
  }
  char* node_mem = arena_.AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  Node* node = new (node_mem) Node();
  node->entry = entry_mem;
  node->height = height;
  return node;
}

int MemTable::RandomHeight() {
  // Increase height with probability 1/4 per level.
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(4)) ++height;
  return height;
}

Slice MemTable::EntryKey(const Node* node) {
  uint32_t klen = 0;
  const char* p =
      GetVarint32Ptr(node->entry, node->entry + 5, &klen);
  return Slice(p, klen);
}

Slice MemTable::EntryValue(const Node* node) {
  uint32_t klen = 0;
  const char* p = GetVarint32Ptr(node->entry, node->entry + 5, &klen);
  p += klen;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  return Slice(p, vlen);
}

int MemTable::CompareEntryToKey(const Node* node, const Slice& key) const {
  return comparator_.Compare(EntryKey(node), key);
}

MemTable::Node* MemTable::FindGreaterOrEqual(const Slice& key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next != nullptr && CompareEntryToKey(next, key) < 0) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

MemTable::Node* MemTable::FindLessThan(const Slice& key) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next != nullptr && CompareEntryToKey(next, key) < 0) {
      x = next;
    } else {
      if (level == 0) return x;
      --level;
    }
  }
}

MemTable::Node* MemTable::FindLast() const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next != nullptr) {
      x = next;
    } else {
      if (level == 0) return x;
      --level;
    }
  }
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  // Encode the entry blob.
  size_t internal_key_size = user_key.size() + 8;
  size_t encoded_len = VarintLength(internal_key_size) + internal_key_size +
                       VarintLength(value.size()) + value.size();
  std::string buf;
  buf.reserve(encoded_len);
  PutVarint32(&buf, static_cast<uint32_t>(internal_key_size));
  buf.append(user_key.data(), user_key.size());
  PutFixed64(&buf, PackSequenceAndType(seq, type));
  PutVarint32(&buf, static_cast<uint32_t>(value.size()));
  buf.append(value.data(), value.size());

  int height = RandomHeight();
  Node* x = NewNode(buf, height);
  Slice key = EntryKey(x);

  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
  FindGreaterOrEqual(key, prev);

  if (height > max_height_.load(std::memory_order_relaxed)) {
    // prev[] above the old height already points at head_.
    max_height_.store(height, std::memory_order_relaxed);
  }

  for (int i = 0; i < height; ++i) {
    x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
    prev[i]->SetNext(i, x);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& lkey, std::string* value, Status* s) {
  Node* node = FindGreaterOrEqual(lkey.internal_key(), nullptr);
  if (node == nullptr) return false;
  // Check the entry is for the same user key.
  Slice entry_key = EntryKey(node);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(entry_key, &parsed)) return false;
  if (comparator_.user_comparator()->Compare(parsed.user_key,
                                             lkey.user_key()) != 0) {
    return false;
  }
  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound();
    return true;
  }
  Slice v = EntryValue(node);
  value->assign(v.data(), v.size());
  *s = Status::OK();
  return true;
}

bool MemTable::Contains(const LookupKey& lkey) const {
  Node* node = FindGreaterOrEqual(lkey.internal_key(), nullptr);
  if (node == nullptr) return false;
  ParsedInternalKey parsed;
  if (!ParseInternalKey(EntryKey(node), &parsed)) return false;
  return comparator_.user_comparator()->Compare(parsed.user_key,
                                                lkey.user_key()) == 0;
}

class MemTable::Iter final : public Iterator {
 public:
  explicit Iter(MemTable* mem) : mem_(mem) { mem_->Ref(); }
  ~Iter() override { mem_->Unref(); }

  bool Valid() const override { return node_ != nullptr; }
  void SeekToFirst() override { node_ = mem_->head_->Next(0); }
  void SeekToLast() override {
    node_ = mem_->FindLast();
    if (node_ == mem_->head_) node_ = nullptr;
  }
  void Seek(const Slice& target) override {
    node_ = mem_->FindGreaterOrEqual(target, nullptr);
  }
  void Next() override { node_ = node_->Next(0); }
  void Prev() override {
    node_ = mem_->FindLessThan(EntryKey(node_));
    if (node_ == mem_->head_) node_ = nullptr;
  }
  Slice key() const override { return EntryKey(node_); }
  Slice value() const override { return EntryValue(node_); }
  Status status() const override { return Status::OK(); }

 private:
  MemTable* mem_;
  Node* node_ = nullptr;
};

Iterator* MemTable::NewIterator() { return new Iter(this); }

}  // namespace pmblade
