#include "memtable/internal_key.h"

#include "util/coding.h"

namespace pmblade {

void AppendInternalKey(std::string* result, const Slice& user_key,
                       SequenceNumber seq, ValueType type) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, type));
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t tag = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  result->user_key = ExtractUserKey(internal_key);
  result->sequence = UnpackSequence(tag);
  result->type = UnpackType(tag);
  return result->type <= kTypeValue;
}

uint64_t ExtractTag(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

int InternalKeyComparator::Compare(const Slice& a, const Slice& b) const {
  int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
  if (r == 0) {
    // Larger tag (newer) sorts first.
    uint64_t atag = ExtractTag(a);
    uint64_t btag = ExtractTag(b);
    if (atag > btag) r = -1;
    else if (atag < btag) r = +1;
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Shorten the user-key portion; re-attach a max tag so the separator still
  // sorts before any real entry with that user key.
  Slice user_start = ExtractUserKey(*start);
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() &&
      user_comparator_->Compare(user_start, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                         kValueTypeForSeek));
    *start = tmp;
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(*key);
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() &&
      user_comparator_->Compare(user_key, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                         kValueTypeForSeek));
    *key = tmp;
  }
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber seq) {
  rep_.reserve(user_key.size() + 8);
  rep_.append(user_key.data(), user_key.size());
  PutFixed64(&rep_, PackSequenceAndType(seq, kValueTypeForSeek));
}

}  // namespace pmblade
