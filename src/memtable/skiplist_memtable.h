// MemTable: an arena-backed skiplist keyed by internal keys. Writers append
// under the DB write lock (single writer at a time); readers traverse
// concurrently without locks (release/acquire on node pointers).

#ifndef PMBLADE_MEMTABLE_SKIPLIST_MEMTABLE_H_
#define PMBLADE_MEMTABLE_SKIPLIST_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "memtable/internal_key.h"
#include "util/arena.h"
#include "util/iterator.h"
#include "util/random.h"

namespace pmblade {

class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Reference counting: the DB holds one ref; flush jobs take another while
  /// reading an immutable memtable.
  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  /// Adds an entry. `type` distinguishes values from tombstones.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup at snapshot embedded in `key`. Returns true if this
  /// memtable has an answer: value (s OK) or tombstone (s NotFound).
  bool Get(const LookupKey& key, std::string* value, Status* s);

  /// Existence-only probe: true if this memtable has any entry (value or
  /// tombstone) for `key`'s user key at its snapshot. No value copy — the
  /// write path's update-detection counters (Eq. 2) use this on every Put.
  bool Contains(const LookupKey& key) const;

  /// Iterator over internal-key entries, newest version of each user key
  /// first. key() is the encoded internal key.
  Iterator* NewIterator();

  /// Approximate DRAM consumed (drives flush triggering).
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

 private:
  struct Node;
  class Iter;

  static constexpr int kMaxHeight = 12;

  int RandomHeight();
  Node* NewNode(const Slice& encoded_entry, int height);
  /// First node with entry key >= `key` (internal-key order).
  Node* FindGreaterOrEqual(const Slice& key, Node** prev) const;
  Node* FindLessThan(const Slice& key) const;
  Node* FindLast() const;
  int CompareEntryToKey(const Node* node, const Slice& key) const;
  static Slice EntryKey(const Node* node);
  static Slice EntryValue(const Node* node);

  InternalKeyComparator comparator_;
  Arena arena_;
  Random rnd_;
  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<int> refs_{0};
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace pmblade

#endif  // PMBLADE_MEMTABLE_SKIPLIST_MEMTABLE_H_
