#include "util/random.h"

namespace pmblade {

void Random::RandomString(size_t len, std::string* dst) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  dst->clear();
  dst->reserve(len);
  for (size_t i = 0; i < len; ++i) {
    dst->push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
}

void Random::RandomBytes(size_t len, std::string* dst) {
  dst->reserve(dst->size() + len);
  for (size_t i = 0; i < len; ++i) {
    dst->push_back(static_cast<char>(' ' + Uniform(95)));
  }
}

}  // namespace pmblade
