// Bloom filter with double hashing, equivalent in structure to LevelDB's
// built-in filter policy. Attached per-SSTable to skip tables that cannot
// contain a key.

#ifndef PMBLADE_UTIL_BLOOM_H_
#define PMBLADE_UTIL_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace pmblade {

/// Builds and probes bloom filters at a fixed bits-per-key budget.
class BloomFilterPolicy {
 public:
  /// `bits_per_key` ~10 gives ~1% false positive rate.
  explicit BloomFilterPolicy(int bits_per_key);

  /// Appends a filter covering `keys` to `dst`.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  /// May return false positives; never false negatives for keys passed to
  /// CreateFilter.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

  static uint32_t BloomHash(const Slice& key);

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_BLOOM_H_
