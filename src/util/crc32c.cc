#include "util/crc32c.h"

#include <array>

namespace pmblade {
namespace crc32c {
namespace {

// Table-driven CRC32C with the Castagnoli polynomial (reflected: 0x82f63b78),
// generated at startup. Slicing-by-4 keeps throughput reasonable without
// hardware intrinsics.
struct Tables {
  uint32_t t[4][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tb = tables();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  // Process 4 bytes at a time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace pmblade
