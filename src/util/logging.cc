#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace pmblade {

void Logger::Log(LogLevel level, const char* format, ...) {
  if (level < min_level_) return;
  va_list ap;
  va_start(ap, format);
  Logv(level, format, ap);
  va_end(ap);
}

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

class StderrLoggerImpl : public Logger {
 public:
  void Logv(LogLevel level, const char* format, va_list ap) override {
    std::lock_guard<std::mutex> lock(mu_);
    fprintf(stderr, "[pmblade %s] ", LevelName(level));
    vfprintf(stderr, format, ap);
    fputc('\n', stderr);
  }

 private:
  std::mutex mu_;
};

class NullLoggerImpl : public Logger {
 public:
  NullLoggerImpl() { min_level_ = LogLevel::kOff; }
  void Logv(LogLevel, const char*, va_list) override {}
};

}  // namespace

Logger* StderrLogger() {
  static StderrLoggerImpl singleton;
  return &singleton;
}

Logger* NullLogger() {
  static NullLoggerImpl singleton;
  return &singleton;
}

}  // namespace pmblade
