// Zipfian key-popularity generators, following the YCSB implementations:
// ZipfianGenerator (Gray et al.'s rejection-free method with precomputed
// zeta), ScrambledZipfian (spreads hot keys over the space via FNV hashing)
// and LatestGenerator (popularity skewed to recently inserted keys).

#ifndef PMBLADE_UTIL_ZIPFIAN_H_
#define PMBLADE_UTIL_ZIPFIAN_H_

#include <cstdint>

#include "util/random.h"

namespace pmblade {

/// Draws items in [0, n) with Zipfian popularity; item 0 is most popular.
/// theta in (0, 1); theta -> 0 approaches uniform, theta -> 1 is heavily
/// skewed (YCSB default is 0.99).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t num_items, double theta, uint64_t seed = 1);

  /// Next sample in [0, num_items).
  uint64_t Next();

  uint64_t num_items() const { return num_items_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t num_items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

/// Zipfian sample whose popular items are scattered uniformly over the item
/// space (so "hot" keys are not all adjacent). Matches YCSB's
/// ScrambledZipfianGenerator.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_items, double theta,
                            uint64_t seed = 1)
      : num_items_(num_items), gen_(num_items, theta, seed) {}

  uint64_t Next() {
    uint64_t v = gen_.Next();
    return FnvHash64(v) % num_items_;
  }

  static uint64_t FnvHash64(uint64_t v) {
    uint64_t hash = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
      uint64_t octet = v & 0xff;
      v >>= 8;
      hash ^= octet;
      hash *= 0x100000001B3ull;
    }
    return hash;
  }

 private:
  uint64_t num_items_;
  ZipfianGenerator gen_;
};

/// Popularity skewed toward the most recently inserted items: sample a
/// Zipfian rank r and return last_item - r. Used by YCSB workload D.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t num_items, double theta, uint64_t seed = 1)
      : gen_(num_items, theta, seed), last_(num_items - 1) {}

  uint64_t Next() {
    uint64_t r = gen_.Next();
    return (r <= last_) ? last_ - r : 0;
  }

  void set_last(uint64_t last) { last_ = last; }

 private:
  ZipfianGenerator gen_;
  uint64_t last_;
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_ZIPFIAN_H_
