#include "util/histogram.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace pmblade {

namespace {
// Generates bucket limits: 1,2,3,...,10, then 12,14,...  roughly geometric
// with ratio ~1.2, ending above 1e13 (covers ns-scale latencies up to hours).
std::vector<uint64_t> MakeLimits() {
  std::vector<uint64_t> limits;
  uint64_t v = 1;
  while (limits.size() < 154) {
    limits.push_back(v);
    uint64_t next = v + std::max<uint64_t>(1, v / 5);
    v = next;
  }
  return limits;
}
const std::vector<uint64_t>& Limits() {
  static const std::vector<uint64_t> kLimits = MakeLimits();
  return kLimits;
}
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0.0;
  min_ = UINT64_MAX;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(uint64_t value) const {
  const auto& limits = Limits();
  auto it = std::upper_bound(limits.begin(), limits.end(), value);
  int idx = static_cast<int>(it - limits.begin());
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

void Histogram::Add(uint64_t value) {
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto& limits = Limits();
  double threshold = count_ * (p / 100.0);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= threshold) {
      uint64_t lo = (i == 0) ? 0 : limits[i - 1];
      uint64_t hi = limits[i];
      // Interpolate within the bucket.
      double left = cumulative - buckets_[i];
      double frac = buckets_[i] > 0 ? (threshold - left) / buckets_[i] : 0.0;
      double v = lo + frac * (hi - lo);
      if (v < min_) v = static_cast<double>(min_);
      if (v > max_) v = static_cast<double>(max_);
      return v;
    }
  }
  return static_cast<double>(max_);
}

uint64_t Histogram::BucketLimit(int index) {
  const auto& limits = Limits();
  if (index < 0) return 0;
  if (index >= kNumBuckets) index = kNumBuckets - 1;
  return limits[index];
}

std::string Histogram::ToJson() const {
  std::string out;
  out.reserve(256);
  char buf[128];
  snprintf(buf, sizeof(buf),
           "{\"count\":%llu,\"sum\":%.17g,\"min\":%llu,\"max\":%llu,"
           "\"avg\":%.17g",
           static_cast<unsigned long long>(count_), sum_,
           static_cast<unsigned long long>(min()),
           static_cast<unsigned long long>(max_), Average());
  out += buf;
  snprintf(buf, sizeof(buf),
           ",\"p50\":%.17g,\"p95\":%.17g,\"p99\":%.17g,\"p999\":%.17g",
           Percentile(50), Percentile(95), Percentile(99), Percentile(99.9));
  out += buf;
  out += ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    snprintf(buf, sizeof(buf), "%s[%llu,%llu]", first ? "" : ",",
             static_cast<unsigned long long>(BucketLimit(i)),
             static_cast<unsigned long long>(buckets_[i]));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.1f p50=%.1f p95=%.1f p99=%.1f p999=%.1f max=%llu",
           static_cast<unsigned long long>(count_), Average(),
           Percentile(50), Percentile(95), Percentile(99), Percentile(99.9),
           static_cast<unsigned long long>(max_));
  return buf;
}

// ---------------------------------------------------------------------------
// ShardedHistogram
// ---------------------------------------------------------------------------

ShardedHistogram::ShardedHistogram(int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards),
      shards_(new Shard[num_shards_]) {}

size_t ShardedHistogram::ThreadSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void ShardedHistogram::Add(uint64_t value) {
  Shard& shard = shards_[ThreadSlot() % num_shards_];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.hist.Add(value);
}

void ShardedHistogram::MergeIn(const Histogram& other) {
  Shard& shard = shards_[0];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.hist.Merge(other);
}

Histogram ShardedHistogram::Merged() const {
  Histogram merged;
  for (int i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    merged.Merge(shards_[i].hist);
  }
  return merged;
}

void ShardedHistogram::Clear() {
  for (int i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].hist.Clear();
  }
}

}  // namespace pmblade
