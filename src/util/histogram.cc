#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace pmblade {

namespace {
// Generates bucket limits: 1,2,3,...,10, then 12,14,...  roughly geometric
// with ratio ~1.2, ending above 1e13 (covers ns-scale latencies up to hours).
std::vector<uint64_t> MakeLimits() {
  std::vector<uint64_t> limits;
  uint64_t v = 1;
  while (limits.size() < 154) {
    limits.push_back(v);
    uint64_t next = v + std::max<uint64_t>(1, v / 5);
    v = next;
  }
  return limits;
}
const std::vector<uint64_t>& Limits() {
  static const std::vector<uint64_t> kLimits = MakeLimits();
  return kLimits;
}
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0.0;
  min_ = UINT64_MAX;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(uint64_t value) const {
  const auto& limits = Limits();
  auto it = std::upper_bound(limits.begin(), limits.end(), value);
  int idx = static_cast<int>(it - limits.begin());
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

void Histogram::Add(uint64_t value) {
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto& limits = Limits();
  double threshold = count_ * (p / 100.0);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= threshold) {
      uint64_t lo = (i == 0) ? 0 : limits[i - 1];
      uint64_t hi = limits[i];
      // Interpolate within the bucket.
      double left = cumulative - buckets_[i];
      double frac = buckets_[i] > 0 ? (threshold - left) / buckets_[i] : 0.0;
      double v = lo + frac * (hi - lo);
      if (v < min_) v = static_cast<double>(min_);
      if (v > max_) v = static_cast<double>(max_);
      return v;
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.1f p50=%.1f p95=%.1f p99=%.1f p999=%.1f max=%llu",
           static_cast<unsigned long long>(count_), Average(),
           Percentile(50), Percentile(95), Percentile(99), Percentile(99.9),
           static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace pmblade
