// Latency histogram with exponentially sized buckets. Collects count / sum /
// min / max plus percentile estimates (p50, p95, p99, p99.9) — the statistics
// the paper reports in Figures 7, 9, 10 and 11.

#ifndef PMBLADE_UTIL_HISTOGRAM_H_
#define PMBLADE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmblade {

/// Single-threaded histogram of non-negative values (typically latencies in
/// nanoseconds). Callers that share a histogram across threads must wrap it
/// with their own lock, or merge per-thread histograms at the end.
class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(uint64_t value);
  /// Merge another histogram's samples into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Average() const { return count_ ? sum_ / count_ : 0.0; }

  /// Estimated value at percentile p in [0, 100], interpolated within the
  /// containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary "count=... avg=... p50=... p99=... p999=... max=...".
  std::string ToString() const;

  /// JSON object: {"count":..,"sum":..,"min":..,"max":..,"avg":..,"p50":..,
  /// "p95":..,"p99":..,"p999":..,"buckets":[[upper_bound,count],...]} with
  /// only the non-empty buckets listed.
  std::string ToJson() const;

  static constexpr int kNumBuckets = 154;

  /// Inclusive upper bound of bucket `index` (the exporters need the bucket
  /// boundaries to emit cumulative Prometheus buckets).
  static uint64_t BucketLimit(int index);
  uint64_t bucket_count(int index) const { return buckets_[index]; }

 private:
  int BucketFor(uint64_t value) const;

  uint64_t count_;
  double sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

/// A histogram striped over several independently locked shards so that
/// concurrent writers on different threads do not serialize on one mutex.
/// Each thread hashes to a fixed shard; Merged() combines all shards into a
/// point-in-time copy. Replaces the "global mutex + shared Histogram"
/// pattern on the DB read/write hot paths.
class ShardedHistogram {
 public:
  static constexpr int kDefaultShards = 16;

  explicit ShardedHistogram(int num_shards = kDefaultShards);

  /// Thread-safe; takes only the calling thread's shard lock.
  void Add(uint64_t value);
  /// Bulk-merges an already-built histogram into this one (ShardedDB
  /// statistics aggregation). Thread-safe; takes one shard lock.
  void MergeIn(const Histogram& other);
  /// Point-in-time merge of every shard.
  Histogram Merged() const;
  void Clear();

  int num_shards() const { return num_shards_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    Histogram hist;
  };

  static size_t ThreadSlot();

  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_HISTOGRAM_H_
