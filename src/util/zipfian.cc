#include "util/zipfian.h"

#include <cmath>

namespace pmblade {

ZipfianGenerator::ZipfianGenerator(uint64_t num_items, double theta,
                                   uint64_t seed)
    : num_items_(num_items), theta_(theta), rng_(seed) {
  if (num_items_ == 0) num_items_ = 1;
  if (theta_ <= 0.0) theta_ = 1e-6;          // degenerate -> ~uniform
  if (theta_ >= 1.0) theta_ = 0.999999;      // the formulas require theta < 1
  zetan_ = Zeta(num_items_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(
      static_cast<double>(num_items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= num_items_) v = num_items_ - 1;
  return v;
}

}  // namespace pmblade
