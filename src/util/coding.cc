#include "util/coding.h"

namespace pmblade {

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

char* EncodeVarint32(char* dst, uint32_t v) {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *(ptr++) = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  *(ptr++) = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

char* EncodeVarint64(char* dst, uint64_t v) {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *(ptr++) = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  *(ptr++) = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

void PutVarint32(std::string* dst, uint32_t v) {
  char buf[5];
  char* end = EncodeVarint32(buf, v);
  dst->append(buf, end - buf);
}

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  char* end = EncodeVarint64(buf, v);
  dst->append(buf, end - buf);
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, limit - q);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, limit - q);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

}  // namespace pmblade
