#include "util/clock.h"

#include <chrono>
#include <thread>

namespace pmblade {

void Clock::SleepForNanos(uint64_t nanos) {
  // Short waits spin for accuracy (device simulators inject microsecond-scale
  // latencies); long waits yield to the OS. The spin window is kept small so
  // concurrently waiting workers don't burn each other's CPU time on
  // low-core-count machines.
  constexpr uint64_t kSpinThresholdNanos = 10'000;  // 10 us
  const uint64_t deadline = NowNanos() + nanos;
  if (nanos > kSpinThresholdNanos) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(nanos - kSpinThresholdNanos));
  }
  while (NowNanos() < deadline) {
    // spin
  }
}

namespace {
class SystemClockImpl : public Clock {
 public:
  uint64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};
}  // namespace

Clock* SystemClock() {
  static SystemClockImpl singleton;
  return &singleton;
}

}  // namespace pmblade
