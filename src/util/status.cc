#include "util/status.h"

namespace pmblade {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* label = "";
  switch (rep_->code) {
    case Code::kOk:              label = "OK"; break;
    case Code::kNotFound:        label = "NotFound"; break;
    case Code::kCorruption:      label = "Corruption"; break;
    case Code::kNotSupported:    label = "NotSupported"; break;
    case Code::kInvalidArgument: label = "InvalidArgument"; break;
    case Code::kIOError:         label = "IOError"; break;
    case Code::kBusy:            label = "Busy"; break;
    case Code::kAborted:         label = "Aborted"; break;
  }
  std::string out = label;
  if (!rep_->msg.empty()) {
    out += ": ";
    out += rep_->msg;
  }
  return out;
}

}  // namespace pmblade
