// Minimal leveled logger. Engine-internal events (compactions, flushes,
// recovery) log through this; benches set the level to WARN to keep stdout
// clean for result tables.

#ifndef PMBLADE_UTIL_LOGGING_H_
#define PMBLADE_UTIL_LOGGING_H_

#include <cstdarg>
#include <string>

namespace pmblade {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  virtual ~Logger() = default;
  virtual void Logv(LogLevel level, const char* format, va_list ap) = 0;

  void Log(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 3, 4)));

  LogLevel min_level() const { return min_level_; }
  void set_min_level(LogLevel level) { min_level_ = level; }

 protected:
  LogLevel min_level_ = LogLevel::kWarn;
};

/// Logger writing "[level] message" lines to stderr; singleton.
Logger* StderrLogger();

/// Logger that drops everything; singleton.
Logger* NullLogger();

#define PMBLADE_LOG(logger, level, ...)                       \
  do {                                                        \
    ::pmblade::Logger* _lg = (logger);                        \
    if (_lg != nullptr && level >= _lg->min_level()) {        \
      _lg->Log(level, __VA_ARGS__);                           \
    }                                                         \
  } while (0)

#define PMBLADE_DEBUG(logger, ...) \
  PMBLADE_LOG(logger, ::pmblade::LogLevel::kDebug, __VA_ARGS__)
#define PMBLADE_INFO(logger, ...) \
  PMBLADE_LOG(logger, ::pmblade::LogLevel::kInfo, __VA_ARGS__)
#define PMBLADE_WARN(logger, ...) \
  PMBLADE_LOG(logger, ::pmblade::LogLevel::kWarn, __VA_ARGS__)
#define PMBLADE_ERROR(logger, ...) \
  PMBLADE_LOG(logger, ::pmblade::LogLevel::kError, __VA_ARGS__)

}  // namespace pmblade

#endif  // PMBLADE_UTIL_LOGGING_H_
