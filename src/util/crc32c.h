// CRC32C (Castagnoli) checksums, software table implementation. Used to
// validate WAL records, SSTable blocks and PM table images.

#ifndef PMBLADE_UTIL_CRC32C_H_
#define PMBLADE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pmblade {
namespace crc32c {

/// Returns the CRC32C of data[0..n-1], continuing from `init_crc` (the CRC of
/// some preceding byte string).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC32C of data[0..n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masking for CRCs stored alongside the data they cover (a stored CRC of
/// bytes that themselves contain that CRC is problematic); same scheme as
/// LevelDB/RocksDB.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace pmblade

#endif  // PMBLADE_UTIL_CRC32C_H_
