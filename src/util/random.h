// Deterministic pseudo-random number utilities for tests, workload
// generation and skiplist height selection.

#ifndef PMBLADE_UTIL_RANDOM_H_
#define PMBLADE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace pmblade {

/// xorshift128+ generator: fast, decent quality, fully deterministic from the
/// seed. Not for cryptographic use.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to spread the seed over both words.
    auto mix = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = mix();
    s1_ = mix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Skewed: picks base in [0, max_log] uniformly, then a uniform value in
  /// [0, 2^base). Favors small numbers, occasionally large ones.
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(max_log + 1));
  }

  /// Fills `dst` with `len` random lowercase-alphanumeric bytes.
  void RandomString(size_t len, std::string* dst);

  /// Random printable-byte payload of `len` bytes (appends to dst).
  void RandomBytes(size_t len, std::string* dst);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_RANDOM_H_
