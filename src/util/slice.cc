// Slice is header-only; this translation unit exists so the module has an
// anchor in the archive (and a place for future out-of-line helpers).
#include "util/slice.h"

namespace pmblade {}
