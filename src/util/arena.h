// Arena: block-based bump allocator. Backs the memtable skiplist; all memory
// is released when the arena is destroyed.

#ifndef PMBLADE_UTIL_ARENA_H_
#define PMBLADE_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pmblade {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes of uninitialized memory.
  char* Allocate(size_t bytes);

  /// Like Allocate but the result is aligned to alignof(max_align_t) (or at
  /// least 8 bytes).
  char* AllocateAligned(size_t bytes);

  /// Total bytes allocated from the system by this arena (for accounting of
  /// memtable size).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace pmblade

#endif  // PMBLADE_UTIL_ARENA_H_
