#ifdef PMBLADE_SYNC_POINTS

#include "util/sync_point.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace pmblade {

struct SyncPoint::Impl {
  std::atomic<bool> enabled{false};

  std::mutex mu;
  std::condition_variable cv;
  // successor -> predecessors that must fire first.
  std::unordered_map<std::string, std::vector<std::string>> predecessors;
  std::unordered_map<std::string, std::function<void(void*)>> callbacks;
  std::unordered_set<std::string> fired;
  int callbacks_running = 0;

  bool PredecessorsFired(const std::string& point) const {
    auto it = predecessors.find(point);
    if (it == predecessors.end()) return true;
    for (const auto& pred : it->second) {
      if (fired.count(pred) == 0) return false;
    }
    return true;
  }
};

SyncPoint* SyncPoint::GetInstance() {
  static SyncPoint instance;
  return &instance;
}

SyncPoint::SyncPoint() : impl_(new Impl()) {}
SyncPoint::~SyncPoint() { delete impl_; }

void SyncPoint::LoadDependency(const std::vector<Dependency>& dependencies) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->predecessors.clear();
  impl_->fired.clear();
  for (const auto& dep : dependencies) {
    impl_->predecessors[dep.successor].push_back(dep.predecessor);
  }
  impl_->cv.notify_all();
}

void SyncPoint::SetCallBack(const std::string& point,
                            std::function<void(void*)> callback) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->callbacks[point] = std::move(callback);
}

void SyncPoint::ClearCallBack(const std::string& point) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  // Never destroy a callback out from under a thread running it.
  impl_->cv.wait(lock, [this] { return impl_->callbacks_running == 0; });
  impl_->callbacks.erase(point);
}

void SyncPoint::ClearAllCallBacks() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [this] { return impl_->callbacks_running == 0; });
  impl_->callbacks.clear();
}

void SyncPoint::EnableProcessing() {
  impl_->enabled.store(true, std::memory_order_release);
}

void SyncPoint::DisableProcessing() {
  impl_->enabled.store(false, std::memory_order_release);
  // Wake any Process() blocked on a dependency so it can observe the
  // disable and return (teardown must never deadlock on a stuck waiter).
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->cv.notify_all();
}

void SyncPoint::ClearTrace() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->fired.clear();
  impl_->cv.notify_all();
}

void SyncPoint::Reset() {
  DisableProcessing();
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv.wait(lock, [this] { return impl_->callbacks_running == 0; });
  impl_->callbacks.clear();
  impl_->predecessors.clear();
  impl_->fired.clear();
  impl_->cv.notify_all();
}

void SyncPoint::Process(const std::string& point, void* arg) {
  if (!impl_->enabled.load(std::memory_order_acquire)) return;

  std::unique_lock<std::mutex> lock(impl_->mu);
  // Honor happens-before edges: block until every predecessor has fired.
  // A Reset/LoadDependency wakes waiters so tests cannot deadlock teardown.
  impl_->cv.wait(lock, [&] {
    return !impl_->enabled.load(std::memory_order_acquire) ||
           impl_->PredecessorsFired(point);
  });
  if (!impl_->enabled.load(std::memory_order_acquire)) return;

  auto it = impl_->callbacks.find(point);
  if (it != impl_->callbacks.end()) {
    // Run outside the lock: callbacks may block or hit other sync points.
    // Copy so a concurrent SetCallBack cannot invalidate the functor.
    std::function<void(void*)> cb = it->second;
    ++impl_->callbacks_running;
    lock.unlock();
    cb(arg);
    lock.lock();
    --impl_->callbacks_running;
  }

  impl_->fired.insert(point);
  impl_->cv.notify_all();
}

}  // namespace pmblade

#endif  // PMBLADE_SYNC_POINTS
