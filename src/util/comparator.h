// Key-ordering abstraction. The engine is templated on nothing; all ordering
// flows through a Comparator*, as in LevelDB/RocksDB.

#ifndef PMBLADE_UTIL_COMPARATOR_H_
#define PMBLADE_UTIL_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace pmblade {

class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Three-way comparison: <0 if a<b, 0 if equal, >0 if a>b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// Name, persisted in table footers to catch mismatched reopen.
  virtual const char* Name() const = 0;

  /// If *start < limit, may shorten *start to a separator in [*start, limit).
  /// Used to shrink index-block keys.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// May change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Built-in lexicographic bytewise ordering; singleton.
const Comparator* BytewiseComparator();

}  // namespace pmblade

#endif  // PMBLADE_UTIL_COMPARATOR_H_
