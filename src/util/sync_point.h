// SyncPoint: named hooks for deterministic concurrency and crash testing.
//
// Engine code marks interesting instants with PMBLADE_SYNC_POINT("Site:What")
// (optionally passing a payload pointer). Tests then
//   * inject callbacks at a point (e.g. trigger a simulated power cut in the
//     middle of a flush), and/or
//   * impose cross-thread ordering: LoadDependency({{"A", "B"}}) blocks the
//     thread reaching "B" until some thread has passed "A".
//
// Processing is off by default; a disabled sync point costs one relaxed
// atomic load. The facility is compiled in by the PMBLADE_SYNC_POINTS
// definition (on for every CMake build type except Release); without it the
// macros expand to nothing and the engine carries zero overhead.
//
// Callbacks run on the thread that hit the point, outside the registry lock,
// so they may block, hit other sync points, or mutate the process (a crash
// callback typically marks an Env dead). They must not call back into
// SetCallBack/LoadDependency on the same thread while holding locks the
// engine needs.

#ifndef PMBLADE_UTIL_SYNC_POINT_H_
#define PMBLADE_UTIL_SYNC_POINT_H_

#ifdef PMBLADE_SYNC_POINTS

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace pmblade {

class SyncPoint {
 public:
  static SyncPoint* GetInstance();

  SyncPoint(const SyncPoint&) = delete;
  SyncPoint& operator=(const SyncPoint&) = delete;

  /// An edge "predecessor happens-before successor".
  struct Dependency {
    std::string predecessor;
    std::string successor;
  };

  /// Replaces the dependency graph and clears the fired-point history.
  void LoadDependency(const std::vector<Dependency>& dependencies);

  /// Installs `callback` at `point` (replacing any previous one). The
  /// payload pointer passed by the instrumented site (may be nullptr) is
  /// forwarded.
  void SetCallBack(const std::string& point,
                   std::function<void(void*)> callback);

  void ClearCallBack(const std::string& point);
  void ClearAllCallBacks();

  void EnableProcessing();
  void DisableProcessing();

  /// Forgets which points have fired (dependency history), keeping the
  /// graph and callbacks.
  void ClearTrace();

  /// Disables processing, clears callbacks, dependencies and history.
  /// Always pair test setup with this in teardown.
  void Reset();

  /// Called by the PMBLADE_SYNC_POINT macros.
  void Process(const std::string& point, void* arg = nullptr);

 private:
  SyncPoint();
  ~SyncPoint();

  struct Impl;
  Impl* impl_;
};

}  // namespace pmblade

#define PMBLADE_SYNC_POINT(name) \
  ::pmblade::SyncPoint::GetInstance()->Process(name)
#define PMBLADE_SYNC_POINT_ARG(name, arg) \
  ::pmblade::SyncPoint::GetInstance()->Process(name, arg)

#else  // !PMBLADE_SYNC_POINTS

#define PMBLADE_SYNC_POINT(name)
#define PMBLADE_SYNC_POINT_ARG(name, arg)

#endif  // PMBLADE_SYNC_POINTS

#endif  // PMBLADE_UTIL_SYNC_POINT_H_
