#include "util/thread_pool.h"

namespace pmblade {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

size_t ThreadPool::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + static_cast<size_t>(active_);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    auto fn = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    fn();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace pmblade
