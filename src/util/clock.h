// Time source abstraction. All latency measurement and simulated-device
// latency injection goes through a Clock so tests can use a mock and the
// device simulators can busy-inject precise delays.

#ifndef PMBLADE_UTIL_CLOCK_H_
#define PMBLADE_UTIL_CLOCK_H_

#include <cstdint>

namespace pmblade {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() = 0;

  /// Blocks the caller for approximately `nanos` ns. Implementations used by
  /// the device simulators must be accurate at microsecond scale (the default
  /// spins for short waits and sleeps for long ones).
  virtual void SleepForNanos(uint64_t nanos);

  uint64_t NowMicros() { return NowNanos() / 1000; }
};

/// The real steady clock; singleton.
Clock* SystemClock();

/// Deterministic, manually advanced clock for unit tests. SleepForNanos
/// advances the virtual time instead of blocking.
class MockClock : public Clock {
 public:
  explicit MockClock(uint64_t start_nanos = 0) : now_(start_nanos) {}

  uint64_t NowNanos() override { return now_; }
  void SleepForNanos(uint64_t nanos) override { now_ += nanos; }
  void Advance(uint64_t nanos) { now_ += nanos; }

 private:
  uint64_t now_;
};

/// RAII stopwatch that adds the elapsed nanoseconds to *out on destruction.
class ScopedTimer {
 public:
  ScopedTimer(Clock* clock, uint64_t* out)
      : clock_(clock), out_(out), start_(clock->NowNanos()) {}
  ~ScopedTimer() { *out_ += clock_->NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Clock* clock_;
  uint64_t* out_;
  uint64_t start_;
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_CLOCK_H_
