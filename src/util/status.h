// Status: the error-handling currency of pmblade. No exceptions cross module
// boundaries; every fallible operation returns a Status (or a value plus a
// Status out-parameter, LevelDB-style).

#ifndef PMBLADE_UTIL_STATUS_H_
#define PMBLADE_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace pmblade {

/// Result of a fallible operation. Cheap to copy when OK (no allocation);
/// carries a code + message otherwise.
class Status {
 public:
  Status() noexcept = default;  // OK

  Status(const Status& s) : rep_(s.rep_ ? new Rep(*s.rep_) : nullptr) {}
  Status& operator=(const Status& s) {
    if (this != &s) rep_.reset(s.rep_ ? new Rep(*s.rep_) : nullptr);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory constructors, one per error class.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsAborted() const { return code() == Code::kAborted; }

  /// Human-readable form, e.g. "IO error: short read".
  std::string ToString() const;

  /// The message passed at construction ("" for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

 private:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
    kAborted,
  };

  struct Rep {
    Code code;
    std::string msg;
  };

  Status(Code code, std::string msg)
      : rep_(new Rep{code, std::move(msg)}) {}

  Code code() const { return rep_ ? rep_->code : Code::kOk; }

  std::unique_ptr<Rep> rep_;
};

/// Evaluates `expr`; if the Status is not OK, returns it from the enclosing
/// function. For internal use in Status-returning functions.
#define PMBLADE_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::pmblade::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                          \
  } while (0)

}  // namespace pmblade

#endif  // PMBLADE_UTIL_STATUS_H_
