// Integer <-> byte-string codecs: little-endian fixed-width and LEB128-style
// varints, plus length-prefixed slices. Used by the WAL, SSTable and PM table
// formats.

#ifndef PMBLADE_UTIL_CODING_H_
#define PMBLADE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace pmblade {

// ---- fixed-width little-endian ----

inline void EncodeFixed16(char* dst, uint16_t v) { memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

// ---- varints ----

/// Writes `v` as a varint at `dst` (which must have >= 5 bytes of room) and
/// returns a pointer just past the encoded bytes.
char* EncodeVarint32(char* dst, uint32_t v);
/// Same, 64-bit (needs >= 10 bytes of room).
char* EncodeVarint64(char* dst, uint64_t v);

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint32 from [p, limit); returns pointer past it, or nullptr on
/// malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Slice-consuming variants: advance `input` past the parsed value. Return
/// false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Number of bytes VarintXX encoding of `v` occupies.
int VarintLength(uint64_t v);

// ---- length-prefixed slices ----

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

}  // namespace pmblade

#endif  // PMBLADE_UTIL_CODING_H_
