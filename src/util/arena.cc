#include "util/arena.h"

namespace pmblade {

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so we don't waste the remainder
    // of the current block.
    return AllocateNewBlock(bytes);
  }
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = 8;
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  size_t slop = (current_mod == 0 ? 0 : kAlign - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    // AllocateFallback always returns fresh, max-aligned memory.
    result = AllocateFallback(bytes);
  }
  assert((reinterpret_cast<uintptr_t>(result) & (kAlign - 1)) == 0);
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.emplace_back(new char[block_bytes]);
  memory_usage_.fetch_add(block_bytes + sizeof(blocks_.back()),
                          std::memory_order_relaxed);
  return blocks_.back().get();
}

}  // namespace pmblade
