// Iterator: the uniform cursor abstraction over memtables, PM tables,
// SSTables and merged views. Same contract as LevelDB's iterator: position
// is invalid until a Seek*/First/Last, key()/value() are valid only while
// Valid(), and status() surfaces any I/O or corruption error encountered.

#ifndef PMBLADE_UTIL_ITERATOR_H_
#define PMBLADE_UTIL_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key() >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  /// Valid only while Valid(); the slice may be invalidated by the next
  /// mutation of the iterator.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

/// An iterator over nothing, optionally carrying an error.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace pmblade

#endif  // PMBLADE_UTIL_ITERATOR_H_
