// Fixed-size thread pool used for background flush/compaction scheduling and
// by the thread-based compaction baseline.

#ifndef PMBLADE_UTIL_THREAD_POOL_H_
#define PMBLADE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmblade {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution; returns immediately.
  void Submit(std::function<void()> fn);

  /// Blocks until all submitted work has finished.
  void Wait();

  /// Tasks queued or currently executing (flush-queue-depth gauge).
  size_t PendingTasks() const;

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pmblade

#endif  // PMBLADE_UTIL_THREAD_POOL_H_
