#include <algorithm>

#include "compaction/policy/pickers.h"

namespace pmblade {

CompactionJob LazyLevelingPicker::MakeEvictionJob(
    size_t partition_index, const PartitionView& view) const {
  CompactionJob job;
  job.partition_index = partition_index;
  job.include_l0 = true;
  job.output_level = 1;
  if (options_.max_ssd_levels <= 1) {
    // A one-level tree has only the last level, and the last level is
    // leveled: this degenerates to the leveled policy's full merge.
    job.run_begin = 0;
    job.run_end = view.runs.size();
  } else {
    // Upper levels are tiered: stack the evicted data as a fresh level-1
    // run, rewriting nothing.
    job.run_begin = 0;
    job.run_end = 0;
  }
  return job;
}

std::vector<CompactionJob> LazyLevelingPicker::PickMaintenance(
    const PickContext& ctx) const {
  std::vector<CompactionJob> jobs;
  const uint32_t ratio = std::max<uint32_t>(options_.size_ratio, 2);
  const uint32_t last_level = std::max<uint32_t>(options_.max_ssd_levels, 1);
  for (size_t i = 0; i < ctx.partitions.size(); ++i) {
    const PartitionView& view = ctx.partitions[i];
    if (!view.claimable || view.runs.size() < 2) continue;

    // Invariant 1: the last level holds a SINGLE run. More than one run
    // tagged >= last_level (a policy switch can leave that behind) merges
    // back into one.
    size_t tail = view.runs.size();
    while (tail > 0 && view.runs[tail - 1].level >= last_level) --tail;
    if (view.runs.size() - tail >= 2) {
      CompactionJob job;
      job.partition_index = i;
      job.include_l0 = false;
      job.run_begin = tail;
      job.run_end = view.runs.size();
      job.output_level = last_level;
      jobs.push_back(job);
      continue;
    }

    // Invariant 2 (tiered upper levels): the deepest block of >= T runs on
    // one level merges one level down; a block landing ON the last level
    // absorbs the existing last-level run so the bottom stays single-run
    // (the leveled last level).
    bool found = false;
    size_t best_begin = 0, best_end = 0;
    uint32_t best_level = 0;
    size_t begin = 0;
    while (begin < view.runs.size()) {
      size_t end = begin;
      while (end < view.runs.size() &&
             view.runs[end].level == view.runs[begin].level) {
        ++end;
      }
      if (view.runs[begin].level < last_level && end - begin >= ratio) {
        found = true;
        best_begin = begin;
        best_end = end;
        best_level = view.runs[begin].level;
      }
      begin = end;
    }
    if (!found) continue;
    CompactionJob job;
    job.partition_index = i;
    job.include_l0 = false;
    if (best_level + 1 == last_level) {
      // Levels are non-decreasing and capped at last_level, so everything
      // below this block IS the last level; extend the range to its end.
      job.run_begin = best_begin;
      job.run_end = view.runs.size();
      job.output_level = last_level;
    } else {
      job.run_begin = best_begin;
      job.run_end = best_end;
      job.output_level = best_level + 1;
    }
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace pmblade
