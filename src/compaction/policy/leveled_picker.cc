#include "compaction/policy/pickers.h"

namespace pmblade {

CompactionJob LeveledPicker::MakeEvictionJob(size_t partition_index,
                                             const PartitionView& view) const {
  // The paper's major compaction: level-0 merges with the ENTIRE run stack
  // (one level-1 run under steady state) into a fresh level-1 run.
  CompactionJob job;
  job.partition_index = partition_index;
  job.include_l0 = true;
  job.run_begin = 0;
  job.run_end = view.runs.size();
  job.output_level = 1;
  return job;
}

std::vector<CompactionJob> LeveledPicker::PickMaintenance(
    const PickContext& ctx) const {
  // Leveled steady state is at most one run, tagged level 1 — nothing to
  // maintain, so this never fires on data the leveled policy wrote. It only
  // collapses a stack inherited from a tiered / lazy-leveling run of the
  // same DB, which is what makes the policy switchable across reopens.
  std::vector<CompactionJob> jobs;
  for (size_t i = 0; i < ctx.partitions.size(); ++i) {
    const PartitionView& view = ctx.partitions[i];
    if (!view.claimable || view.runs.empty()) continue;
    if (view.runs.size() == 1 && view.runs[0].level == 1) continue;
    CompactionJob job;
    job.partition_index = i;
    job.include_l0 = false;
    job.run_begin = 0;
    job.run_end = view.runs.size();
    job.output_level = 1;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace pmblade
