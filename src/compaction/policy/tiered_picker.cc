#include <algorithm>

#include "compaction/policy/pickers.h"

namespace pmblade {

CompactionJob TieredPicker::MakeEvictionJob(size_t partition_index,
                                            const PartitionView& view) const {
  // Stack the evicted level-0 data as a fresh level-1 run at the front of
  // the stack — no existing SSD run is rewritten, which is where tiering's
  // write-amplification win comes from.
  (void)view;
  CompactionJob job;
  job.partition_index = partition_index;
  job.include_l0 = true;
  job.run_begin = 0;
  job.run_end = 0;
  job.output_level = 1;
  return job;
}

std::vector<CompactionJob> TieredPicker::PickMaintenance(
    const PickContext& ctx) const {
  std::vector<CompactionJob> jobs;
  const uint32_t ratio = std::max<uint32_t>(options_.size_ratio, 2);
  const uint32_t max_level = std::max<uint32_t>(options_.max_ssd_levels, 1);
  for (size_t i = 0; i < ctx.partitions.size(); ++i) {
    const PartitionView& view = ctx.partitions[i];
    if (!view.claimable || view.runs.size() < ratio) continue;
    // Scan the contiguous level blocks (levels are non-decreasing with
    // depth) and take the DEEPEST block holding >= T runs, so a cascade
    // settles bottom-up across the executor's pick rounds.
    bool found = false;
    size_t best_begin = 0, best_end = 0;
    uint32_t best_level = 0;
    size_t begin = 0;
    while (begin < view.runs.size()) {
      size_t end = begin;
      while (end < view.runs.size() &&
             view.runs[end].level == view.runs[begin].level) {
        ++end;
      }
      if (end - begin >= ratio) {
        found = true;
        best_begin = begin;
        best_end = end;
        best_level = view.runs[begin].level;
      }
      begin = end;
    }
    if (!found) continue;
    CompactionJob job;
    job.partition_index = i;
    job.include_l0 = false;
    job.run_begin = best_begin;
    job.run_end = best_end;
    // A full block merges one level down; at the deepest level it merges in
    // place instead (collapsing T runs to one bounds space amplification).
    job.output_level = best_level < max_level ? best_level + 1 : best_level;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace pmblade
