#include "compaction/policy/compaction_picker.h"

#include "compaction/policy/pickers.h"

namespace pmblade {

EvictionPick CompactionPicker::PickEviction(const PickContext& ctx) const {
  EvictionPick pick;
  // Eq. 3 gate: total level-0 usage reached τ_m, or the PM pool itself is
  // running short.
  if (!cost_->MajorCompactionDue(ctx.total_l0_bytes) && !ctx.pool_pressure) {
    return pick;
  }
  pick.evaluated = true;

  std::vector<PartitionCounters> all;
  all.reserve(ctx.partitions.size());
  for (const PartitionView& view : ctx.partitions) {
    all.push_back(view.counters);
  }
  if (options_.adaptive_tau_t) {
    pick.tau_t = cost_->AdaptiveTauT(ctx.recent_reads, ctx.recent_writes,
                                     options_.tau_t_max_factor);
  }
  // Greedy knapsack (Eq. 3): keep the hottest partitions within the τ_t
  // budget; everything else with level-0 data is an eviction victim.
  std::vector<size_t> retained = cost_->SelectRetained(all, pick.tau_t);
  pick.keep.insert(retained.begin(), retained.end());
  for (size_t i = 0; i < ctx.partitions.size(); ++i) {
    const PartitionView& view = ctx.partitions[i];
    if (pick.keep.count(i) != 0 || view.l0_bytes == 0 || !view.claimable) {
      continue;
    }
    pick.jobs.push_back(MakeEvictionJob(i, view));
  }
  return pick;
}

bool IsValidCompactionPolicy(const std::string& name) {
  return name == "leveled" || name == "tiered" || name == "lazy_leveling";
}

Status NewCompactionPicker(const CompactionPolicyOptions& options,
                           const CostModel* cost_model,
                           std::unique_ptr<CompactionPicker>* picker) {
  if (options.policy == "leveled") {
    picker->reset(new LeveledPicker(options, cost_model));
  } else if (options.policy == "tiered") {
    picker->reset(new TieredPicker(options, cost_model));
  } else if (options.policy == "lazy_leveling") {
    picker->reset(new LazyLevelingPicker(options, cost_model));
  } else {
    return Status::InvalidArgument(
        "unknown compaction_policy \"" + options.policy +
        "\" (expected leveled, tiered or lazy_leveling)");
  }
  return Status::OK();
}

}  // namespace pmblade
