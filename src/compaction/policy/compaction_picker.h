// Pluggable compaction policies: the what/when/where of SSD-side
// compaction, factored out of DBImpl behind one interface (ROADMAP item 4;
// design space per "Constructing and Analyzing the LSM Compaction Design
// Space").
//
// A CompactionPicker owns three decisions:
//   * trigger evaluation — Eq. 1/2 for internal (PM-side) compaction is
//     shared verbatim across policies (the PM level-0 shape is policy-
//     independent); the Eq. 3 eviction gate (τ_m / pool pressure) and the
//     greedy keep-set knapsack are likewise shared,
//   * victim selection + output placement for PM -> SSD eviction
//     (PickEviction): leveled merges a victim's level-0 WITH its whole run
//     stack into one level-1 run (the paper's major compaction,
//     bit-for-bit); tiered and lazy-leveling stack the evicted data as a
//     fresh level-1 run, deferring the rewrite,
//   * SSD shape maintenance (PickMaintenance): merging run-stack blocks
//     that violate the policy's invariant — tiered merges a level's block
//     one level down once `size_ratio` runs pile up (whole-run merges, no
//     intra-level rewrites until the deepest level); lazy-leveling does the
//     same above a single-run (leveled) last level; leveled only ever needs
//     maintenance to collapse a stack inherited from another policy, which
//     is what makes Options::compaction_policy switchable across reopens.
//
// The executor (DBImpl) turns jobs into subcompactions, claims, installs
// and manifest commits; pickers are pure functions over a snapshot of the
// tree and never touch engine state.

#ifndef PMBLADE_COMPACTION_POLICY_COMPACTION_PICKER_H_
#define PMBLADE_COMPACTION_POLICY_COMPACTION_PICKER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "util/status.h"

namespace pmblade {

enum class CompactionPolicyKind { kLeveled = 0, kTiered = 1,
                                  kLazyLeveling = 2 };

/// Policy knobs, copied out of Options at DB open (compaction/policy must
/// not depend on core/).
struct CompactionPolicyOptions {
  std::string policy = "leveled";
  /// T: runs that may stack on one SSD level before the tiered /
  /// lazy-leveling maintenance pass merges the block one level down.
  uint32_t size_ratio = 4;
  /// Deepest SSD level a run may be tagged with (>= 1). A block reaching
  /// this level is merged in place (tiered) or into the single last-level
  /// run (lazy leveling), which bounds space amplification.
  uint32_t max_ssd_levels = 3;
  /// Mirror of Options::adaptive_tau_t / tau_t_max_factor (Section IV-C).
  bool adaptive_tau_t = false;
  double tau_t_max_factor = 2.0;
};

/// What a picker sees of one partition, snapshotted under the DB mutex.
struct PartitionView {
  PartitionCounters counters;
  uint64_t l0_bytes = 0;
  struct RunView {
    uint32_t level = 1;
    uint64_t bytes = 0;
  };
  /// SSD runs, newest first, level tags non-decreasing with depth.
  std::vector<RunView> runs;
  /// False when another compaction worker holds this partition's claim; the
  /// picker must not choose it.
  bool claimable = true;
};

struct PickContext {
  std::vector<PartitionView> partitions;  // index-aligned with the DB's list
  uint64_t total_l0_bytes = 0;
  /// PM-pool pressure backstop: the pool is nearly full, evict regardless
  /// of τ_m (see RunCompactionsLocked).
  bool pool_pressure = false;
  /// Traffic mix since the last compaction, for adaptive τ_t.
  uint64_t recent_reads = 0;
  uint64_t recent_writes = 0;
};

/// One SSD compaction. Inputs: optionally the partition's whole level-0
/// (unsorted + sorted run), plus the contiguous run-stack block
/// [run_begin, run_end). The merged output replaces that block as a single
/// run tagged `output_level`, installed at position run_begin (the front of
/// the stack for an eviction job with an empty block). include_l0 requires
/// run_begin == 0: level-0 data is newer than every SSD run, so an L0 merge
/// may only absorb a prefix of the stack. Tombstones are dropped by the
/// executor iff the input block reaches the oldest run (run_end == stack
/// size).
struct CompactionJob {
  size_t partition_index = 0;
  bool include_l0 = true;
  size_t run_begin = 0;
  size_t run_end = 0;
  uint32_t output_level = 1;
};

/// The outcome of an eviction pick: jobs plus the Eq. 3 keep-set debug
/// payload (DBImpl emits the keep_set_selected event from it, exactly like
/// the pre-picker engine).
struct EvictionPick {
  /// True when the eviction gate fired, even if no victims were claimable.
  bool evaluated = false;
  std::vector<CompactionJob> jobs;
  std::set<size_t> keep;  // partition indices retained (Φ)
  uint64_t tau_t = 0;     // override used; 0 = the configured default
};

class CompactionPicker {
 public:
  CompactionPicker(const CompactionPolicyOptions& options,
                   const CostModel* cost_model)
      : options_(options), cost_(cost_model) {}
  virtual ~CompactionPicker() = default;

  virtual const char* name() const = 0;
  virtual CompactionPolicyKind kind() const = 0;

  /// Eq. 1/2 internal-compaction trigger; identical across policies.
  CostDecision EvaluateInternal(const PartitionCounters& counters) const {
    return cost_->EvaluateInternal(counters);
  }

  /// PM -> SSD eviction (the paper's major compaction trigger): Eq. 3 gate,
  /// keep-set knapsack, one job per victim. Called once per Algorithm-1
  /// check.
  virtual EvictionPick PickEviction(const PickContext& ctx) const;

  /// SSD shape maintenance: at most one job per partition per call; the
  /// executor calls this in a loop (rebuilding the context) until it
  /// returns nothing, so multi-level cascades settle within one check.
  virtual std::vector<CompactionJob> PickMaintenance(
      const PickContext& ctx) const = 0;

  const CompactionPolicyOptions& policy_options() const { return options_; }

 protected:
  /// How this policy turns one eviction victim into a job; everything else
  /// about eviction (gate, knapsack, claimability) is shared.
  virtual CompactionJob MakeEvictionJob(size_t partition_index,
                                        const PartitionView& view) const = 0;

  CompactionPolicyOptions options_;
  const CostModel* cost_;
};

/// True for the names NewCompactionPicker accepts.
bool IsValidCompactionPolicy(const std::string& name);

/// Instantiates the picker selected by `options.policy` ("leveled",
/// "tiered", "lazy_leveling"); InvalidArgument for anything else.
/// `cost_model` must outlive the picker.
Status NewCompactionPicker(const CompactionPolicyOptions& options,
                           const CostModel* cost_model,
                           std::unique_ptr<CompactionPicker>* picker);

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_POLICY_COMPACTION_PICKER_H_
