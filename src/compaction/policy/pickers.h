// The three concrete compaction policies. Most callers go through
// NewCompactionPicker; tests include this to instantiate a shape directly.

#ifndef PMBLADE_COMPACTION_POLICY_PICKERS_H_
#define PMBLADE_COMPACTION_POLICY_PICKERS_H_

#include "compaction/policy/compaction_picker.h"

namespace pmblade {

/// Today's behavior, bit-for-bit (the default): eviction merges a victim's
/// level-0 with its whole run stack into one level-1 run; maintenance only
/// fires to collapse a multi-run stack inherited from another policy.
class LeveledPicker final : public CompactionPicker {
 public:
  using CompactionPicker::CompactionPicker;
  const char* name() const override { return "leveled"; }
  CompactionPolicyKind kind() const override {
    return CompactionPolicyKind::kLeveled;
  }
  std::vector<CompactionJob> PickMaintenance(
      const PickContext& ctx) const override;

 protected:
  CompactionJob MakeEvictionJob(size_t partition_index,
                                const PartitionView& view) const override;
};

/// Size-ratio run stacking: eviction prepends a fresh level-1 run (no
/// rewrite of existing SSD data); once `size_ratio` runs pile up on a
/// level, the whole block merges one level down — whole-run merges only,
/// no intra-level rewrites until the deepest level, where the block merges
/// in place to bound space amplification.
class TieredPicker final : public CompactionPicker {
 public:
  using CompactionPicker::CompactionPicker;
  const char* name() const override { return "tiered"; }
  CompactionPolicyKind kind() const override {
    return CompactionPolicyKind::kTiered;
  }
  std::vector<CompactionJob> PickMaintenance(
      const PickContext& ctx) const override;

 protected:
  CompactionJob MakeEvictionJob(size_t partition_index,
                                const PartitionView& view) const override;
};

/// Tiered upper levels over a single-run (leveled) last level: writes enjoy
/// tiering's low write amplification through the upper levels while point
/// and range reads bound their worst case at one run for the bulk of the
/// data.
class LazyLevelingPicker final : public CompactionPicker {
 public:
  using CompactionPicker::CompactionPicker;
  const char* name() const override { return "lazy_leveling"; }
  CompactionPolicyKind kind() const override {
    return CompactionPolicyKind::kLazyLeveling;
  }
  std::vector<CompactionJob> PickMaintenance(
      const PickContext& ctx) const override;

 protected:
  CompactionJob MakeEvictionJob(size_t partition_index,
                                const PartitionView& view) const override;
};

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_POLICY_PICKERS_H_
