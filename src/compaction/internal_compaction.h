// Internal compaction (Section IV-B): merging a partition's unsorted and
// sorted level-0 tables into a fresh run of sorted tables, entirely on PM.
// Removes read amplification (one table to search instead of n_i + 1),
// deduplicates updated keys before they reach the SSD, and frees PM space.

#ifndef PMBLADE_COMPACTION_INTERNAL_COMPACTION_H_
#define PMBLADE_COMPACTION_INTERNAL_COMPACTION_H_

#include <cstdint>
#include <vector>

#include "compaction/minor_compaction.h"
#include "memtable/internal_key.h"
#include "obs/event.h"
#include "pmtable/l0_table.h"
#include "util/clock.h"

namespace pmblade {

struct InternalCompactionStats {
  uint64_t input_tables = 0;
  uint64_t output_tables = 0;
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t input_bytes = 0;    // PM bytes before
  uint64_t output_bytes = 0;   // PM bytes after
  uint64_t duration_nanos = 0;

  /// PM space released (Table IV's metric).
  int64_t bytes_released() const {
    return static_cast<int64_t>(input_bytes) -
           static_cast<int64_t>(output_bytes);
  }
};

struct InternalCompactionOptions {
  /// Split output into tables of roughly this size.
  uint64_t target_table_bytes = 8ull << 20;
  /// Drop tombstones when true (safe only if no older data exists below
  /// level-0 for this partition's range).
  bool drop_tombstones = false;
  /// Drop versions older than this snapshot floor (0 keeps only the newest
  /// version of each user key plus anything a live snapshot may need).
  SequenceNumber oldest_snapshot = kMaxSequenceNumber;
  Clock* clock = nullptr;
  /// When set (and active), an internal_compaction_end event is emitted on
  /// success with the stats below. `partition_id` labels that event.
  obs::EventBus* event_bus = nullptr;
  uint64_t partition_id = 0;
};

/// Merges `inputs` (any mix of sorted/unsorted L0 tables; *newer tables must
/// come first* so the merge keeps the newest version on ties) into new
/// tables built by `factory`. On success fills `outputs` and `stats`.
/// The inputs are NOT destroyed; the caller swaps them out of its version
/// and destroys them after the new tables are installed.
Status RunInternalCompaction(const InternalCompactionOptions& options,
                             const InternalKeyComparator& icmp,
                             const std::vector<L0TableRef>& inputs,
                             L0TableFactory* factory,
                             std::vector<L0TableRef>* outputs,
                             InternalCompactionStats* stats);

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_INTERNAL_COMPACTION_H_
