// Cost-based compaction models (Section IV-C, Equations 1-3).
//
// Eq. 1 (read amplification): trigger internal compaction of partition i
// when the per-second read saving exceeds the amortized compaction cost:
//     n̂ᵢʳ · (nᵢ/2) · I_b  −  I_p / t̂_p  >  0
//
// Eq. 2 (write amplification): once the partition holds >= tau_w bytes,
// trigger internal compaction when deduplicating on PM is cheaper than
// carrying the duplicates through major compaction. The duplicates in PM
// tables are produced by updates, so n_bef − n_aft ≈ nᵢᵘ and n_bef ≈ nᵢʷ:
//     nᵢᵘ · I_s  −  nᵢʷ · I_p  >  0
//
// Eq. 3 (keep warm data): when total level-0 usage reaches tau_m, keep the
// hottest partitions (greedy knapsack on nᵢʳ / sᵢ) within the tau_t budget
// and major-compact the rest (P − Φ).
//
// I_b, I_p, I_s, t̂_p are tunable device scalars (paper: "can be set
// according to devices performance"); nᵢʳ/nᵢʷ/nᵢᵘ reset whenever the
// partition is compacted.

#ifndef PMBLADE_COMPACTION_COST_MODEL_H_
#define PMBLADE_COMPACTION_COST_MODEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pmblade {

struct CostModelParams {
  /// Cost to binary-search one PM table (I_b), per-record internal
  /// compaction cost (I_p), per-record major compaction cost (I_s), and the
  /// internal compaction per-record processing time t̂_p. Units are
  /// arbitrary but must be mutually consistent.
  double i_b = 1.0;
  double i_p = 4.0;
  double i_s = 40.0;
  double t_p = 1.0;

  /// Partition size (bytes) before Eq. 2 is evaluated at all.
  uint64_t tau_w = 8ull << 20;
  /// Total level-0 bytes that trigger major compaction (Eq. 3 gate).
  uint64_t tau_m = 64ull << 20;
  /// Level-0 bytes the retained set Φ may occupy after major compaction.
  uint64_t tau_t = 32ull << 20;

  /// Minimum unsorted tables before Eqs. 1-2 can fire. Each internal
  /// compaction rewrites the partition's whole level-0 (sorted run
  /// included), so batching a few unsorted tables per pass keeps PM write
  /// amplification in check.
  uint32_t min_unsorted_for_internal = 4;
};

/// A snapshot of one partition's counters, fed to the model.
struct PartitionCounters {
  uint64_t partition_id = 0;
  uint32_t unsorted_tables = 0;   // n_i
  uint32_t sorted_tables = 0;     // m_i
  uint64_t size_bytes = 0;        // s_i
  uint64_t reads = 0;             // n_i^r  (since last compaction)
  uint64_t writes = 0;            // n_i^w
  uint64_t updates = 0;           // n_i^u
  double reads_per_sec = 0.0;     // n̂_i^r
};

/// The full outcome of evaluating Eqs. 1-2 for one partition: both verdicts
/// plus the intermediate quantities, so observability can report why a
/// compaction was (or was not) triggered.
struct CostDecision {
  bool eq1_triggered = false;   // Eq. 1 (read amplification) fired
  bool eq2_triggered = false;   // Eq. 2 (write amplification) fired
  bool gate_passed = false;     // n_i >= min_unsorted_for_internal
  double eq1_benefit_rate = 0.0;  // n̂ᵢʳ · (nᵢ/2) · I_b
  double eq1_cost_rate = 0.0;     // I_p / t̂_p
  double eq2_ssd_savings = 0.0;   // nᵢᵘ · I_s
  double eq2_pm_cost = 0.0;       // nᵢʷ · I_p

  bool triggered() const { return eq1_triggered || eq2_triggered; }
};

class CostModel {
 public:
  explicit CostModel(const CostModelParams& params) : params_(params) {}

  /// Evaluates Eqs. 1-2 for one partition and returns the verdicts together
  /// with the intermediate benefit/cost terms. ShouldCompactForReads/Writes
  /// are thin wrappers over this.
  CostDecision EvaluateInternal(const PartitionCounters& p) const;

  /// Eq. 1: internal compaction pays for itself in read latency.
  bool ShouldCompactForReads(const PartitionCounters& p) const {
    return EvaluateInternal(p).eq1_triggered;
  }

  /// Eq. 2: internal compaction pays for itself in SSD write savings.
  /// Includes the s_i >= tau_w gate from Algorithm 1.
  bool ShouldCompactForWrites(const PartitionCounters& p) const {
    return EvaluateInternal(p).eq2_triggered;
  }

  /// Eq. 3 gate: is a major compaction due?
  bool MajorCompactionDue(uint64_t total_l0_bytes) const {
    return total_l0_bytes >= params_.tau_m;
  }

  /// Eq. 3 greedy knapsack: returns the indices (into `partitions`) of the
  /// retained set Φ — hottest first by nᵢʳ/sᵢ until the budget is filled.
  /// Everything not returned is the major-compaction set P − Φ.
  /// `tau_t_override` replaces params().tau_t when non-zero (used by the
  /// adaptive-τ_t policy below).
  std::vector<size_t> SelectRetained(
      const std::vector<PartitionCounters>& partitions,
      uint64_t tau_t_override = 0) const;

  /// The paper's τ_t adjustment ("When the system is mainly serving reads,
  /// the data accumulation on PM will be slow. Then we can increase τ_t, to
  /// leave more data in PM."): scales τ_t by up to `max_factor` as the
  /// read share of recent traffic goes from 1/2 to 1. A write-dominated mix
  /// keeps the base τ_t.
  uint64_t AdaptiveTauT(uint64_t reads, uint64_t writes,
                        double max_factor) const;

  const CostModelParams& params() const { return params_; }

  /// Memory-arbiter hook: a runtime replacement for params().tau_t (the
  /// Eq. 3 keep-set budget). 0 = use the configured value. Atomic so the
  /// arbiter thread can retune it against concurrent compaction checks;
  /// SelectRetained and AdaptiveTauT read it through base_tau_t().
  void set_dynamic_tau_t(uint64_t bytes) {
    dynamic_tau_t_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t dynamic_tau_t() const {
    return dynamic_tau_t_.load(std::memory_order_relaxed);
  }
  /// The effective Eq. 3 budget before adaptive scaling or per-call
  /// overrides: the arbiter's target when set, else the configured τ_t.
  uint64_t base_tau_t() const {
    uint64_t dynamic = dynamic_tau_t();
    return dynamic != 0 ? dynamic : params_.tau_t;
  }

 private:
  CostModelParams params_;
  std::atomic<uint64_t> dynamic_tau_t_{0};
};

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_COST_MODEL_H_
