// Major compaction (level-0 -> level-1) with three interchangeable
// scheduling engines (Section V):
//
//   kThread    — one OS thread per subtask, blocking S1/S3 I/O. This is the
//                RocksDB-style baseline of Table III / Fig. 9 ("Thread").
//   kCoroutine — compaction coroutines that suspend on their own S1/S3 I/O
//                completions ("Coroutine": basic switch-on-IO-wait policy).
//   kPmBlade   — the paper's design: per worker thread, one dedicated flush
//                coroutine owns all S3 writes (so S2 is never fragmented by
//                S3), gated by q_flush = max(q - q_comp - q_cli, 0); the
//                task splitter assigns k = max(floor(q/c), 1) compaction
//                coroutines to each of c worker threads.
//
// The compaction itself is the classic S1/S2/S3 loop: read an input block
// (S1), merge-sort and deduplicate records (S2), emit filled write buffers
// (S3). The SSD's timing comes from SsdModel; input records come from
// iterators whose SSD-resident share is charged as S1 reads; output
// SSTables are written through real files with S3 charged per write buffer.

#ifndef PMBLADE_COMPACTION_MAJOR_COMPACTION_H_
#define PMBLADE_COMPACTION_MAJOR_COMPACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compaction/minor_compaction.h"
#include "env/ssd_model.h"
#include "memtable/internal_key.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "util/histogram.h"

namespace pmblade {

enum class CompactionEngine { kThread, kCoroutine, kPmBlade };

struct MajorCompactionOptions {
  CompactionEngine engine = CompactionEngine::kPmBlade;
  /// Number of subtasks the key range is split into.
  int concurrency = 4;
  /// c: worker threads (coroutine engines) or max parallel OS threads
  /// (thread engine).
  int worker_threads = 2;
  /// q: maximum concurrent I/O operations (drives q_flush and k).
  int max_io_q = 4;
  /// S1 granularity: an input read I/O is charged per this many SSD bytes.
  size_t read_block_bytes = 64 << 10;
  /// S3 granularity: output write buffer size.
  size_t write_block_bytes = 64 << 10;
  /// Records processed per S2 slice before the coroutine yields.
  int records_per_slice = 64;
  /// S3 double buffering: output blocks are handed to a per-file background
  /// writer so the physical file Append overlaps the next S2 merge slice
  /// (two blocks in flight per output — one filling, one writing). The
  /// SIMULATED S3 charge is untouched: chunks are still queued/charged by
  /// the engine's S3 policy, so the paper's q_flush gate remains the single
  /// global throttle. Write errors latch and surface at Sync/Close, which
  /// fails the run exactly like a synchronous write error.
  bool double_buffer_writes = true;
  /// Drop tombstones in the output (true when compacting to the bottom).
  bool drop_tombstones = true;
  SequenceNumber oldest_snapshot = kMaxSequenceNumber;

  Clock* clock = nullptr;

  /// When set, Run() emits major_compaction_begin/end events and the flush
  /// gate reports q_flush transitions through the same bus.
  obs::EventBus* event_bus = nullptr;
  /// When set, Run() maintains "pmblade.compaction.major.*" counters
  /// (s1_reads, s3_writes, ssd_bytes, coroutine resumes) and the
  /// "pmblade.compaction.major.duration_nanos" histogram.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One key-range subtask's input description.
struct CompactionSubtaskInput {
  /// Produces the merged input iterator for this subtask's range, already
  /// positioned at the first record (newer sources first).
  std::function<Iterator*()> make_input;
  /// Fraction of this subtask's input bytes that reside on the SSD
  /// (level-1 inputs); drives S1 charging. 0 = pure-PM input.
  double ssd_input_fraction = 0.0;
  /// Per-subtask tombstone policy: -1 inherits
  /// MajorCompactionOptions::drop_tombstones, 0/1 force it. One Run may mix
  /// jobs whose input ranges do (bottom of the run stack) and do not reach
  /// the bottom of their partition, so the verdict is per subtask.
  int drop_tombstones = -1;
};

struct CompactionOutputMeta {
  /// Index of the subtask (in Run()'s input vector) that produced this
  /// output; subtasks that emit nothing have no meta.
  size_t subtask_index = 0;
  std::string path;
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  std::string smallest;  // internal keys
  std::string largest;
};

struct MajorCompactionStats {
  uint64_t wall_nanos = 0;
  uint64_t cpu_busy_nanos = 0;       // S2 + merge bookkeeping time
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t s1_reads = 0;
  uint64_t s3_writes = 0;
  uint64_t ssd_bytes_written = 0;
  uint64_t io_busy_nanos = 0;        // device busy-union during compaction
  uint64_t io_service_nanos = 0;     // device service time (no queueing)
  Histogram io_latency;              // per-op latency during the compaction

  double CpuUtilization(int cores) const {
    return wall_nanos == 0
               ? 0.0
               : static_cast<double>(cpu_busy_nanos) /
                     (static_cast<double>(wall_nanos) * cores);
  }
  /// Device utilization in the paper's sense: the service time the I/O work
  /// inherently needs over the wall time it actually took — shorter walls
  /// for the same work mean the device was kept busier.
  double IoUtilization() const {
    return wall_nanos == 0 ? 0.0
                           : static_cast<double>(io_service_nanos) /
                                 static_cast<double>(wall_nanos);
  }
};

class MajorCompactor {
 public:
  /// `raw_env` is the *unsimulated* Env (the model's timing is charged
  /// explicitly at S1/S3 granularity, uniformly across engines).
  /// `sstable_opts` supplies comparator/filter/block settings and the output
  /// directory; file numbers are drawn from `factory`.
  MajorCompactor(Env* raw_env, SsdModel* model, L0TableFactory* factory,
                 const MajorCompactionOptions& options);

  /// Runs the subtasks to completion and reports the new level-1 tables.
  Status Run(const std::vector<CompactionSubtaskInput>& subtasks,
             std::vector<CompactionOutputMeta>* outputs,
             MajorCompactionStats* stats);

  const MajorCompactionOptions& options() const { return options_; }

  /// Per-subtask working state; public so the engine helper functions in the
  /// implementation file can operate on it.
  struct SubtaskState;

 private:
  Status RunThreadEngine(std::vector<SubtaskState>& states);
  Status RunCoroutineEngine(std::vector<SubtaskState>& states,
                            bool use_flush_coroutine);
  /// Deletes every output file a failed Run created (whether half-written,
  /// sealed, or not yet opened past name reservation) and clears `outputs`,
  /// so an error never strands orphan .sst files for the caller to track.
  void CleanupFailedRun(std::vector<SubtaskState>& states,
                        std::vector<CompactionOutputMeta>* outputs);

  Env* raw_env_;
  SsdModel* model_;
  L0TableFactory* factory_;
  MajorCompactionOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> cpu_busy_nanos_{0};
};

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_MAJOR_COMPACTION_H_
