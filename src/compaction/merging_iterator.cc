#include "compaction/merging_iterator.h"

namespace pmblade {
namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator,
                  std::vector<Iterator*> children)
      : comparator_(comparator) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    direction_ = kForward;
    FindSmallest();
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    direction_ = kReverse;
    FindLargest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    direction_ = kForward;
    FindSmallest();
  }

  void Next() override {
    // If we were going backward, realign all other children to be after the
    // current key.
    if (direction_ != kForward) {
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(key());
        if (child->Valid() &&
            comparator_->Compare(key(), child->key()) == 0) {
          child->Next();
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(key());
        if (child->Valid()) {
          child->Prev();  // now strictly before key()
        } else {
          child->SeekToLast();
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          comparator_->Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    // Reverse order so earlier children win ties going backward too.
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      Iterator* child = it->get();
      if (!child->Valid()) continue;
      if (largest == nullptr ||
          comparator_->Compare(child->key(), largest->key()) > 0) {
        largest = child;
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
  Direction direction_ = kForward;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator,
                             std::vector<Iterator*> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return children[0];
  return new MergingIterator(comparator, std::move(children));
}

}  // namespace pmblade
