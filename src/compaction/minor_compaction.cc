#include "compaction/minor_compaction.h"

#include "pmtable/array_table.h"
#include "pmtable/pm_table_builder.h"
#include "pmtable/snappy_table.h"
#include "sstable/ssd_l0_table.h"
#include "sstable/table_builder.h"

namespace pmblade {

L0TableFactory::L0TableFactory(const L0FactoryOptions& options, PmPool* pool,
                               Env* ssd_env)
    : options_(options), pool_(pool), ssd_env_(ssd_env) {}

namespace {

/// Accumulates distinct user keys while a PM-layout build streams through
/// its input, then installs the whole-table bloom filter on the finished
/// table. Key versions are adjacent in internal order, so deduplication is
/// one comparison against the last collected key.
class FilterCollector {
 public:
  explicit FilterCollector(const BloomFilterPolicy* policy)
      : policy_(policy) {}

  void Observe(const Slice& internal_key) {
    if (policy_ == nullptr) return;
    Slice user = ExtractUserKey(internal_key);
    if (keys_.empty() || user.compare(Slice(keys_.back())) != 0) {
      keys_.emplace_back(user.data(), user.size());
    }
  }

  void InstallOn(L0Table* table) {
    if (policy_ == nullptr || keys_.empty()) return;
    std::vector<Slice> slices;
    slices.reserve(keys_.size());
    for (const auto& key : keys_) slices.emplace_back(key);
    std::string filter;
    policy_->CreateFilter(slices, &filter);
    table->InstallFilter(policy_, std::move(filter));
  }

 private:
  const BloomFilterPolicy* policy_;
  std::vector<std::string> keys_;
};

}  // namespace

Status L0TableFactory::BuildFrom(Iterator* input, L0TableRef* table) {
  table->reset();
  if (!input->Valid()) return input->status();

  switch (options_.layout) {
    case L0Layout::kPmTable: {
      PmTableBuilder builder(pool_, options_.pm_table);
      FilterCollector filter(options_.filter_policy);
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
        filter.Observe(input->key());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.num_entries() == 0) return Status::OK();
      std::shared_ptr<PmTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      filter.InstallOn(t.get());
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kArrayTable: {
      ArrayTableBuilder builder(pool_);
      FilterCollector filter(options_.filter_policy);
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
        filter.Observe(input->key());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.num_entries() == 0) return Status::OK();
      std::shared_ptr<ArrayTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      filter.InstallOn(t.get());
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kSnappyTable:
    case L0Layout::kSnappyGroupTable: {
      uint32_t group = options_.layout == L0Layout::kSnappyTable
                           ? 1
                           : options_.snappy_group_size;
      SnappyTableBuilder builder(pool_, group);
      FilterCollector filter(options_.filter_policy);
      uint64_t added = 0;
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
        filter.Observe(input->key());
        ++added;
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (added == 0) return Status::OK();
      std::shared_ptr<SnappyTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      filter.InstallOn(t.get());
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kSstable: {
      uint64_t file_number = NextFileNumber();
      char name[64];
      snprintf(name, sizeof(name), "/%06llu.sst",
               static_cast<unsigned long long>(file_number));
      std::string path = options_.ssd_dir + name;

      std::unique_ptr<WritableFile> file;
      PMBLADE_RETURN_IF_ERROR(ssd_env_->NewWritableFile(path, &file));
      TableBuilderOptions topts;
      topts.comparator = options_.icmp;
      topts.filter_policy = options_.filter_policy;
      topts.block_size = options_.block_size;
      TableBuilder builder(topts, file.get());
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.NumEntries() == 0) {
        builder.Abandon();
        file->Close();
        ssd_env_->RemoveFile(path);
        return Status::OK();
      }
      PMBLADE_RETURN_IF_ERROR(builder.Finish());
      PMBLADE_RETURN_IF_ERROR(file->Sync());
      PMBLADE_RETURN_IF_ERROR(file->Close());

      TableReaderOptions ropts;
      ropts.comparator = options_.icmp;
      ropts.filter_policy = options_.filter_policy;
      ropts.block_cache = options_.block_cache;
      ropts.file_number = file_number;
      std::shared_ptr<SsdL0Table> t;
      PMBLADE_RETURN_IF_ERROR(
          SsdL0Table::Open(ssd_env_, path, file_number, ropts, &t));
      *table = std::move(t);
      return Status::OK();
    }
  }
  return Status::NotSupported("unknown L0 layout");
}

}  // namespace pmblade
