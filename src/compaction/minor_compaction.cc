#include "compaction/minor_compaction.h"

#include "pmtable/array_table.h"
#include "pmtable/pm_table_builder.h"
#include "pmtable/snappy_table.h"
#include "sstable/ssd_l0_table.h"
#include "sstable/table_builder.h"

namespace pmblade {

L0TableFactory::L0TableFactory(const L0FactoryOptions& options, PmPool* pool,
                               Env* ssd_env)
    : options_(options), pool_(pool), ssd_env_(ssd_env) {}

Status L0TableFactory::BuildFrom(Iterator* input, L0TableRef* table) {
  table->reset();
  if (!input->Valid()) return input->status();

  switch (options_.layout) {
    case L0Layout::kPmTable: {
      PmTableBuilder builder(pool_, options_.pm_table);
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.num_entries() == 0) return Status::OK();
      std::shared_ptr<PmTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kArrayTable: {
      ArrayTableBuilder builder(pool_);
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.num_entries() == 0) return Status::OK();
      std::shared_ptr<ArrayTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kSnappyTable:
    case L0Layout::kSnappyGroupTable: {
      uint32_t group = options_.layout == L0Layout::kSnappyTable
                           ? 1
                           : options_.snappy_group_size;
      SnappyTableBuilder builder(pool_, group);
      uint64_t added = 0;
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
        ++added;
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (added == 0) return Status::OK();
      std::shared_ptr<SnappyTable> t;
      PMBLADE_RETURN_IF_ERROR(builder.Finish(&t));
      *table = std::move(t);
      return Status::OK();
    }

    case L0Layout::kSstable: {
      uint64_t file_number = NextFileNumber();
      char name[64];
      snprintf(name, sizeof(name), "/%06llu.sst",
               static_cast<unsigned long long>(file_number));
      std::string path = options_.ssd_dir + name;

      std::unique_ptr<WritableFile> file;
      PMBLADE_RETURN_IF_ERROR(ssd_env_->NewWritableFile(path, &file));
      TableBuilderOptions topts;
      topts.comparator = options_.icmp;
      topts.filter_policy = options_.filter_policy;
      topts.block_size = options_.block_size;
      TableBuilder builder(topts, file.get());
      for (; input->Valid(); input->Next()) {
        builder.Add(input->key(), input->value());
      }
      PMBLADE_RETURN_IF_ERROR(input->status());
      if (builder.NumEntries() == 0) {
        builder.Abandon();
        file->Close();
        ssd_env_->RemoveFile(path);
        return Status::OK();
      }
      PMBLADE_RETURN_IF_ERROR(builder.Finish());
      PMBLADE_RETURN_IF_ERROR(file->Sync());
      PMBLADE_RETURN_IF_ERROR(file->Close());

      TableReaderOptions ropts;
      ropts.comparator = options_.icmp;
      ropts.filter_policy = options_.filter_policy;
      ropts.block_cache = options_.block_cache;
      ropts.file_number = file_number;
      std::shared_ptr<SsdL0Table> t;
      PMBLADE_RETURN_IF_ERROR(
          SsdL0Table::Open(ssd_env_, path, file_number, ropts, &t));
      *table = std::move(t);
      return Status::OK();
    }
  }
  return Status::NotSupported("unknown L0 layout");
}

}  // namespace pmblade
