// Minor compaction: flushing an immutable memtable (or a key sub-range of
// it) into one level-0 table. The L0TableFactory abstracts the physical
// layout so every configuration in the paper is expressible (PM table,
// array table, LZ-compressed tables, or an SSTable on the SSD for
// PMBlade-SSD).

#ifndef PMBLADE_COMPACTION_MINOR_COMPACTION_H_
#define PMBLADE_COMPACTION_MINOR_COMPACTION_H_

#include <atomic>
#include <memory>
#include <string>

#include "env/env.h"
#include "pm/pm_pool.h"
#include "pmtable/l0_table.h"
#include "pmtable/pm_table.h"
#include "sstable/block_cache.h"
#include "util/bloom.h"

namespace pmblade {

/// Physical layout of level-0 tables.
enum class L0Layout {
  kPmTable,           // the paper's compressed PM table
  kArrayTable,        // uncompressed array table on PM
  kSnappyTable,       // per-pair LZ on PM        (Fig. 6 baseline)
  kSnappyGroupTable,  // per-8-pair LZ on PM      (Fig. 6 baseline)
  kSstable,           // SSTable on SSD           (PMBlade-SSD)
};

struct L0FactoryOptions {
  L0Layout layout = L0Layout::kPmTable;
  PmTableOptions pm_table;      // used when layout == kPmTable
  uint32_t snappy_group_size = 8;

  // `filter_policy` covers every layout: SSTables get a per-block filter
  // section, PM layouts get a DRAM-resident whole-table filter built from
  // the keys streamed through BuildFrom. nullptr = no filters.
  // The remaining SSTable settings apply to layout == kSstable and level-1
  // outputs.
  const InternalKeyComparator* icmp = nullptr;
  const BloomFilterPolicy* filter_policy = nullptr;
  BlockCache* block_cache = nullptr;
  size_t block_size = 4096;
  std::string ssd_dir;  // directory for SSTable files
};

class L0TableFactory {
 public:
  /// `pool` may be nullptr for kSstable; `ssd_env` may be nullptr for PM
  /// layouts. Neither is owned.
  L0TableFactory(const L0FactoryOptions& options, PmPool* pool, Env* ssd_env);

  /// Builds a table from `input` (positioned entries in ascending internal
  /// order; consumed until !Valid()). Returns the opened table. An empty
  /// input yields *table == nullptr and OK.
  Status BuildFrom(Iterator* input, L0TableRef* table);

  const L0FactoryOptions& options() const { return options_; }
  PmPool* pool() const { return pool_; }
  Env* ssd_env() const { return ssd_env_; }

  /// File number allocator for SSTable outputs (shared with major
  /// compaction so names never collide).
  uint64_t NextFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Manifest plumbing: restore/read the allocator without consuming.
  void set_next_file_number(uint64_t n) { next_file_number_.store(n); }
  uint64_t peek_next_file_number() const { return next_file_number_.load(); }

 private:
  L0FactoryOptions options_;
  PmPool* pool_;
  Env* ssd_env_;
  std::atomic<uint64_t> next_file_number_{1};
};

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_MINOR_COMPACTION_H_
