#include "compaction/internal_compaction.h"

#include <memory>

#include "compaction/merging_iterator.h"

namespace pmblade {

namespace {

/// Streams deduplicated records from a merged internal-key iterator:
/// for each user key, keeps the newest version; drops older versions that no
/// live snapshot can observe; optionally drops tombstones entirely.
class DedupingIterator final : public Iterator {
 public:
  DedupingIterator(Iterator* base, const InternalKeyComparator& icmp,
                   bool drop_tombstones, SequenceNumber oldest_snapshot)
      : base_(base),
        icmp_(icmp),
        drop_tombstones_(drop_tombstones),
        oldest_snapshot_(oldest_snapshot) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override {
    base_->SeekToFirst();
    last_user_key_.clear();
    has_last_ = false;
    SkipObsolete();
  }
  void SeekToLast() override { base_->SeekToLast(); }  // not used
  void Seek(const Slice& target) override {
    base_->Seek(target);
    last_user_key_.clear();
    has_last_ = false;
    SkipObsolete();
  }
  void Next() override {
    base_->Next();
    SkipObsolete();
  }
  void Prev() override { base_->Prev(); }  // not used
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

  uint64_t records_seen() const { return records_seen_; }

 private:
  void SkipObsolete() {
    while (base_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(base_->key(), &parsed)) {
        // Surface corruption by stopping; status() of children reports it.
        break;
      }
      ++records_seen_;
      bool same_as_last =
          has_last_ &&
          icmp_.user_comparator()->Compare(parsed.user_key,
                                           Slice(last_user_key_)) == 0;
      if (same_as_last) {
        if (last_visible_seq_ <= oldest_snapshot_) {
          // An older version of a user key whose newest visible version was
          // already emitted: obsolete.
          base_->Next();
          continue;
        }
        // The previously emitted version is above the snapshot floor; this
        // older version may still be observed by a snapshot. Keep it and
        // lower the visibility floor.
        last_visible_seq_ = parsed.sequence;
        return;
      }
      {
        last_user_key_.assign(parsed.user_key.data(), parsed.user_key.size());
        has_last_ = true;
        last_visible_seq_ = parsed.sequence;
        if (drop_tombstones_ && parsed.type == kTypeDeletion &&
            parsed.sequence <= oldest_snapshot_) {
          // Tombstone with nothing underneath: drop it and everything older.
          base_->Next();
          continue;
        }
      }
      return;  // emit this record
    }
  }

  Iterator* base_;
  const InternalKeyComparator& icmp_;
  bool drop_tombstones_;
  SequenceNumber oldest_snapshot_;
  std::string last_user_key_;
  SequenceNumber last_visible_seq_ = 0;
  bool has_last_ = false;
  uint64_t records_seen_ = 0;
};

/// Caps an iterator at ~target_bytes of emitted payload, so outputs split
/// into multiple tables. The wrapped iterator keeps its position across
/// segments.
class SegmentIterator final : public Iterator {
 public:
  SegmentIterator(Iterator* base, uint64_t target_bytes)
      : base_(base), target_bytes_(target_bytes) {}

  void StartSegment() { emitted_ = 0; }
  bool base_exhausted() const { return !base_->Valid(); }

  bool Valid() const override {
    return base_->Valid() && emitted_ < target_bytes_;
  }
  void SeekToFirst() override {}  // base is pre-positioned
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {
    emitted_ += base_->key().size() + base_->value().size();
    base_->Next();
  }
  void Prev() override {}
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  Iterator* base_;
  uint64_t target_bytes_;
  uint64_t emitted_ = 0;
};

}  // namespace

Status RunInternalCompaction(const InternalCompactionOptions& options,
                             const InternalKeyComparator& icmp,
                             const std::vector<L0TableRef>& inputs,
                             L0TableFactory* factory,
                             std::vector<L0TableRef>* outputs,
                             InternalCompactionStats* stats) {
  outputs->clear();
  *stats = InternalCompactionStats{};
  Clock* clock = options.clock != nullptr ? options.clock : SystemClock();
  const uint64_t start = clock->NowNanos();

  std::vector<Iterator*> children;
  children.reserve(inputs.size());
  for (const auto& table : inputs) {
    stats->input_tables++;
    stats->input_records += table->num_entries();
    stats->input_bytes += table->size_bytes();
    children.push_back(table->NewIterator());
  }

  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, std::move(children)));
  DedupingIterator deduped(merged.get(), icmp, options.drop_tombstones,
                           options.oldest_snapshot);
  deduped.SeekToFirst();

  SegmentIterator segment(&deduped, options.target_table_bytes);
  while (!segment.base_exhausted()) {
    segment.StartSegment();
    L0TableRef out;
    PMBLADE_RETURN_IF_ERROR(factory->BuildFrom(&segment, &out));
    if (out != nullptr) {
      stats->output_tables++;
      stats->output_records += out->num_entries();
      stats->output_bytes += out->size_bytes();
      outputs->push_back(std::move(out));
    } else {
      break;  // nothing emitted (everything obsolete)
    }
  }
  PMBLADE_RETURN_IF_ERROR(deduped.status());

  stats->duration_nanos = clock->NowNanos() - start;

  if (options.event_bus != nullptr && options.event_bus->active()) {
    options.event_bus->Emit(
        obs::Event(obs::EventType::kInternalCompactionEnd, clock->NowNanos())
            .With("partition", static_cast<double>(options.partition_id))
            .With("input_tables", static_cast<double>(stats->input_tables))
            .With("output_tables", static_cast<double>(stats->output_tables))
            .With("input_records", static_cast<double>(stats->input_records))
            .With("output_records",
                  static_cast<double>(stats->output_records))
            .With("input_bytes", static_cast<double>(stats->input_bytes))
            .With("output_bytes", static_cast<double>(stats->output_bytes))
            .With("duration_nanos",
                  static_cast<double>(stats->duration_nanos)));
  }
  return Status::OK();
}

}  // namespace pmblade
