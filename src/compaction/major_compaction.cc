#include "compaction/major_compaction.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "coro/io_gate.h"
#include "coro/scheduler.h"
#include "coro/task.h"
#include "sstable/table_builder.h"

namespace pmblade {

namespace {

/// WritableFile wrapper that forwards to the real file and reports every
/// `chunk_bytes` of accumulated output, so engines can charge/schedule S3 at
/// write-buffer granularity.
class ChunkingFile final : public WritableFile {
 public:
  ChunkingFile(WritableFile* base, size_t chunk_bytes,
               std::function<void(size_t)> on_chunk)
      : base_(base), chunk_bytes_(chunk_bytes), on_chunk_(std::move(on_chunk)) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (!s.ok()) return s;
    pending_ += data.size();
    while (pending_ >= chunk_bytes_) {
      on_chunk_(chunk_bytes_);
      pending_ -= chunk_bytes_;
    }
    return s;
  }

  /// Charges the final partial write buffer.
  void FlushPartialChunk() {
    if (pending_ > 0) {
      on_chunk_(pending_);
      pending_ = 0;
    }
  }

  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  WritableFile* base_;
  size_t chunk_bytes_;
  std::function<void(size_t)> on_chunk_;
  size_t pending_ = 0;
};

/// WritableFile decorator that decouples the merge thread from the physical
/// file write: Append fills an in-memory block, and each full block is
/// handed to a dedicated writer thread while the producer keeps merging into
/// the other block — classic double buffering, at most two blocks (one
/// filling, one writing) so memory stays bounded at 2 * block_bytes. Only
/// the PHYSICAL Append is overlapped; the simulated S3 charge still flows
/// through ChunkingFile's chunk callback into the engine's S3 policy, so the
/// q_flush gate keeps throttling compaction output globally.
///
/// Error discipline: a failed background Append latches and is returned by
/// the next HandOff/Flush/Sync/Close — the producer's data was already
/// acknowledged (like an OS write cache), so callers must treat the whole
/// run as failed and retry it, which is exactly the caller's existing
/// contract for synchronous write errors.
class DoubleBufferedFile final : public WritableFile {
 public:
  DoubleBufferedFile(WritableFile* base, size_t block_bytes)
      : base_(base), block_bytes_(std::max<size_t>(block_bytes, 1)) {
    active_.reserve(block_bytes_);
  }

  ~DoubleBufferedFile() override { JoinWriter(); }

  Status Append(const Slice& data) override {
    size_t off = 0;
    while (off < data.size()) {
      const size_t take =
          std::min(block_bytes_ - active_.size(), data.size() - off);
      active_.append(data.data() + off, take);
      off += take;
      if (active_.size() == block_bytes_) {
        Status s = HandOff();
        if (!s.ok()) return s;
      }
    }
    return Status::OK();
  }

  Status Flush() override {
    Status s = Drain();
    if (!s.ok()) return s;
    return base_->Flush();
  }

  Status Sync() override {
    Status s = Drain();
    if (!s.ok()) return s;
    return base_->Sync();
  }

  Status Close() override {
    Status s = Drain();
    JoinWriter();
    Status close = base_->Close();
    return s.ok() ? close : s;
  }

 private:
  /// Queues the active block for the writer. Blocks only while the previous
  /// block is still being written (that wait IS the back-pressure that
  /// bounds memory). Lazily spawns the writer thread on first use, so
  /// never-filled outputs cost nothing.
  Status HandOff() {
    std::unique_lock<std::mutex> lock(mu_);
    write_cv_.wait(lock, [this] { return !has_pending_ || !status_.ok(); });
    if (!status_.ok()) return status_;
    pending_.swap(active_);
    has_pending_ = true;
    if (!writer_.joinable()) {
      writer_ = std::thread([this] { WriterLoop(); });
    }
    work_cv_.notify_one();
    lock.unlock();
    active_.clear();
    active_.reserve(block_bytes_);
    return Status::OK();
  }

  /// Hands off any partial block and waits until the writer is idle, then
  /// reports the latched status. After an ok Drain, base_ holds every byte
  /// ever Appended.
  Status Drain() {
    if (!active_.empty()) {
      Status s = HandOff();
      if (!s.ok()) return s;
    }
    std::unique_lock<std::mutex> lock(mu_);
    write_cv_.wait(lock, [this] {
      return (!has_pending_ && !in_flight_) || !status_.ok();
    });
    return status_;
  }

  void JoinWriter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      work_cv_.notify_all();
    }
    if (writer_.joinable()) writer_.join();
  }

  void WriterLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [this] { return stop_ || has_pending_; });
      if (!has_pending_) return;  // stop requested, nothing left to write
      std::string block;
      block.swap(pending_);
      has_pending_ = false;
      in_flight_ = true;
      write_cv_.notify_all();  // the producer may refill pending_ now
      lock.unlock();
      Status s = base_->Append(Slice(block));
      lock.lock();
      in_flight_ = false;
      if (!s.ok() && status_.ok()) status_ = s;
      write_cv_.notify_all();
    }
  }

  WritableFile* base_;
  const size_t block_bytes_;

  // Producer-owned; only touched between HandOffs.
  std::string active_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // wakes the writer
  std::condition_variable write_cv_;  // wakes the producer / Drain
  std::string pending_;               // guarded by mu_
  bool has_pending_ = false;          // guarded by mu_
  bool in_flight_ = false;            // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  Status status_;                     // guarded by mu_: first write error
  std::thread writer_;
};

}  // namespace

struct MajorCompactor::SubtaskState {
  // Input.
  std::unique_ptr<Iterator> input;
  double ssd_fraction = 0.0;

  // Output chain: builder -> chunk_file -> [buffered_file ->] raw_file.
  // buffered_file (a DoubleBufferedFile) is present only when
  // double_buffer_writes is on; sink() is the handle Sync/Close must go
  // through so queued blocks are drained before the base file is sealed.
  std::unique_ptr<WritableFile> raw_file;
  std::unique_ptr<WritableFile> buffered_file;
  std::unique_ptr<ChunkingFile> chunk_file;
  std::unique_ptr<TableBuilder> builder;
  CompactionOutputMeta meta;

  WritableFile* sink() {
    return buffered_file != nullptr ? buffered_file.get() : raw_file.get();
  }
  void CloseSink() {
    if (sink() != nullptr) sink()->Close();
    buffered_file.reset();
    raw_file.reset();
  }

  // S3 chunks awaiting I/O charge (filled by the chunk callback, drained by
  // the engine's S3 policy).
  std::vector<size_t> pending_chunks;

  // Dedup state.
  std::string last_user_key;
  bool has_last = false;
  SequenceNumber last_visible_seq = 0;
  /// Resolved per-subtask tombstone verdict (see
  /// CompactionSubtaskInput::drop_tombstones).
  bool drop_tombstones = true;

  // S1 charging.
  double ssd_bytes_consumed = 0.0;
  double ssd_bytes_charged = 0.0;

  // S2 CPU-work accounting (thread engine; coroutine engines use the
  // scheduler's resume-slice clock instead).
  uint64_t cpu_work_nanos = 0;

  // Counters.
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t s1_reads = 0;
  uint64_t s3_writes = 0;
  uint64_t ssd_bytes_written = 0;
  uint64_t io_wait_nanos = 0;  // thread engine: time slept in blocking I/O

  Status status;
  bool done = false;
};

// A failed Run must not leave its output files behind: the manifest never
// references them, so they would survive as orphans until a manual cleanup.
// Abandon whatever each builder buffered, release still-open file handles,
// and unlink every path this run created — including outputs that were
// already sealed before a later subtask failed. Removal errors are ignored:
// this is best-effort tidying on an already-failing path, and the startup GC
// sweeps anything that slips through.
void MajorCompactor::CleanupFailedRun(
    std::vector<SubtaskState>& states,
    std::vector<CompactionOutputMeta>* outputs) {
  for (SubtaskState& st : states) {
    if (st.builder != nullptr) st.builder->Abandon();
    st.CloseSink();  // stops the double-buffer writer before the unlink
    if (!st.meta.path.empty()) {
      raw_env_->RemoveFile(st.meta.path);
    }
  }
  outputs->clear();
}

MajorCompactor::MajorCompactor(Env* raw_env, SsdModel* model,
                               L0TableFactory* factory,
                               const MajorCompactionOptions& options)
    : raw_env_(raw_env),
      model_(model),
      factory_(factory),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock()) {}

Status MajorCompactor::Run(
    const std::vector<CompactionSubtaskInput>& subtasks,
    std::vector<CompactionOutputMeta>* outputs, MajorCompactionStats* stats) {
  outputs->clear();
  *stats = MajorCompactionStats{};
  cpu_busy_nanos_.store(0);
  const uint64_t io_busy_before = model_->BusyNanos();
  const uint64_t io_service_before = model_->ServiceNanos();
  const uint64_t start = clock_->NowNanos();

  // Prepare subtask states: inputs, output files, builders.
  std::vector<SubtaskState> states(subtasks.size());
  const L0FactoryOptions& fopts = factory_->options();
  for (size_t i = 0; i < subtasks.size(); ++i) {
    SubtaskState& st = states[i];
    st.input.reset(subtasks[i].make_input());
    st.ssd_fraction = subtasks[i].ssd_input_fraction;
    st.drop_tombstones = subtasks[i].drop_tombstones < 0
                             ? options_.drop_tombstones
                             : subtasks[i].drop_tombstones != 0;
    st.meta.subtask_index = i;

    st.meta.file_number = factory_->NextFileNumber();
    char name[64];
    snprintf(name, sizeof(name), "/%06llu.sst",
             static_cast<unsigned long long>(st.meta.file_number));
    st.meta.path = fopts.ssd_dir + name;
    Status open_status = raw_env_->NewWritableFile(st.meta.path, &st.raw_file);
    if (!open_status.ok()) {
      CleanupFailedRun(states, outputs);
      return open_status;
    }
    if (options_.double_buffer_writes) {
      st.buffered_file.reset(new DoubleBufferedFile(
          st.raw_file.get(), options_.write_block_bytes));
    }
    SubtaskState* stp = &st;
    st.chunk_file.reset(new ChunkingFile(
        st.sink(), options_.write_block_bytes,
        [stp](size_t bytes) { stp->pending_chunks.push_back(bytes); }));
    TableBuilderOptions topts;
    topts.comparator = fopts.icmp;
    topts.filter_policy = fopts.filter_policy;
    topts.block_size = fopts.block_size;
    st.builder.reset(new TableBuilder(topts, st.chunk_file.get()));
  }

  if (options_.event_bus != nullptr && options_.event_bus->active()) {
    options_.event_bus->Emit(
        obs::Event(obs::EventType::kMajorCompactionBegin, start)
            .With("subtasks", static_cast<double>(subtasks.size()))
            .With("engine", static_cast<double>(options_.engine))
            .With("worker_threads", options_.worker_threads)
            .With("max_io_q", options_.max_io_q));
  }

  Status s;
  switch (options_.engine) {
    case CompactionEngine::kThread:
      s = RunThreadEngine(states);
      break;
    case CompactionEngine::kCoroutine:
      s = RunCoroutineEngine(states, /*use_flush_coroutine=*/false);
      break;
    case CompactionEngine::kPmBlade:
      s = RunCoroutineEngine(states, /*use_flush_coroutine=*/true);
      break;
  }
  if (!s.ok()) {
    CleanupFailedRun(states, outputs);
    return s;
  }

  // Seal outputs (install point: only now do the new tables become real).
  for (SubtaskState& st : states) {
    if (!st.status.ok()) {
      CleanupFailedRun(states, outputs);
      return st.status;
    }
    if (st.output_records == 0) {
      st.builder->Abandon();
      st.CloseSink();
      raw_env_->RemoveFile(st.meta.path);
      st.meta.path.clear();
      continue;
    }
    st.meta.file_size = st.builder->FileSize();
    st.meta.num_entries = st.builder->NumEntries();
    // Sync through the sink: with double buffering on, this drains every
    // queued block (surfacing any latched background-write error) before
    // syncing the base file.
    Status seal = st.sink()->Sync();
    if (seal.ok()) {
      seal = st.sink()->Close();
      st.buffered_file.reset();
      st.raw_file.reset();  // Close releases the handle even on error
    }
    if (!seal.ok()) {
      CleanupFailedRun(states, outputs);
      return seal;
    }
    outputs->push_back(st.meta);
    stats->input_records += st.input_records;
    stats->output_records += st.output_records;
    stats->s1_reads += st.s1_reads;
    stats->s3_writes += st.s3_writes;
    stats->ssd_bytes_written += st.ssd_bytes_written;
  }
  // Empty subtasks still contribute their counters.
  for (SubtaskState& st : states) {
    if (st.output_records == 0) {
      stats->input_records += st.input_records;
      stats->s1_reads += st.s1_reads;
      stats->s3_writes += st.s3_writes;
    }
  }

  stats->wall_nanos = clock_->NowNanos() - start;
  stats->cpu_busy_nanos = cpu_busy_nanos_.load();
  stats->io_busy_nanos = model_->BusyNanos() - io_busy_before;
  stats->io_service_nanos = model_->ServiceNanos() - io_service_before;
  stats->io_latency = model_->LatencySnapshot();

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m->GetCounter("pmblade.compaction.major.s1_reads")->Inc(stats->s1_reads);
    m->GetCounter("pmblade.compaction.major.s3_writes")->Inc(stats->s3_writes);
    m->GetCounter("pmblade.compaction.major.ssd_bytes")
        ->Inc(stats->ssd_bytes_written);
    m->GetHistogram("pmblade.compaction.major.duration_nanos")
        ->Observe(stats->wall_nanos);
  }
  if (options_.event_bus != nullptr && options_.event_bus->active()) {
    options_.event_bus->Emit(
        obs::Event(obs::EventType::kMajorCompactionEnd, clock_->NowNanos())
            .With("wall_nanos", static_cast<double>(stats->wall_nanos))
            .With("input_records", static_cast<double>(stats->input_records))
            .With("output_records",
                  static_cast<double>(stats->output_records))
            .With("s1_reads", static_cast<double>(stats->s1_reads))
            .With("s3_writes", static_cast<double>(stats->s3_writes))
            .With("ssd_bytes_written",
                  static_cast<double>(stats->ssd_bytes_written))
            .With("io_busy_nanos", static_cast<double>(stats->io_busy_nanos))
            .With("cpu_busy_nanos",
                  static_cast<double>(stats->cpu_busy_nanos)));
  }
  return Status::OK();
}

namespace {

/// Processes up to `max_records` records of `st` through the dedup filter
/// into the builder. Returns false when the input is exhausted. Shared by
/// all engines (this is the S2 work).
bool ProcessSlice(MajorCompactor::SubtaskState* st,
                  const InternalKeyComparator& icmp, int max_records,
                  bool drop_tombstones, SequenceNumber oldest_snapshot) {
  Iterator* in = st->input.get();
  int processed = 0;
  while (in->Valid() && processed < max_records) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(in->key(), &parsed)) {
      st->status = Status::Corruption("major compaction: bad internal key");
      return false;
    }
    ++st->input_records;
    ++processed;
    st->ssd_bytes_consumed +=
        st->ssd_fraction * (in->key().size() + in->value().size());

    bool same_as_last =
        st->has_last &&
        icmp.user_comparator()->Compare(parsed.user_key,
                                        Slice(st->last_user_key)) == 0;
    bool drop = false;
    if (same_as_last) {
      if (st->last_visible_seq <= oldest_snapshot) {
        drop = true;  // shadowed by a visible newer version
      } else {
        st->last_visible_seq = parsed.sequence;
      }
    } else {
      st->last_user_key.assign(parsed.user_key.data(),
                               parsed.user_key.size());
      st->has_last = true;
      st->last_visible_seq = parsed.sequence;
      if (drop_tombstones && parsed.type == kTypeDeletion &&
          parsed.sequence <= oldest_snapshot) {
        drop = true;  // bottom-level tombstone with nothing underneath
      }
    }

    if (!drop) {
      if (st->output_records == 0) st->meta.smallest = in->key().ToString();
      st->meta.largest = in->key().ToString();
      st->builder->Add(in->key(), in->value());
      ++st->output_records;
    }
    in->Next();
  }
  if (!in->Valid()) {
    Status s = in->status();
    if (!s.ok()) st->status = s;
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Thread engine
// ---------------------------------------------------------------------------

Status MajorCompactor::RunThreadEngine(std::vector<SubtaskState>& states) {
  const InternalKeyComparator* icmp = factory_->options().icmp;
  std::vector<std::thread> threads;
  threads.reserve(states.size());

  for (SubtaskState& st : states) {
    threads.emplace_back([this, &st, icmp] {
      bool more = true;
      while (more) {
        {
          ScopedTimer timer(clock_, &st.cpu_work_nanos);
          more = ProcessSlice(&st, *icmp, options_.records_per_slice,
                              st.drop_tombstones,
                              options_.oldest_snapshot);
        }
        if (!st.status.ok()) break;
        // S1: blocking reads for consumed SSD bytes.
        while (st.ssd_bytes_consumed - st.ssd_bytes_charged >=
               options_.read_block_bytes) {
          st.io_wait_nanos +=
              model_->OnRead(options_.read_block_bytes, IoClass::kCompaction);
          st.ssd_bytes_charged += options_.read_block_bytes;
          ++st.s1_reads;
        }
        // S3: blocking writes for every full write buffer.
        for (size_t chunk : st.pending_chunks) {
          st.io_wait_nanos += model_->OnWrite(chunk, IoClass::kFlush);
          st.ssd_bytes_written += chunk;
          ++st.s3_writes;
        }
        st.pending_chunks.clear();
      }
      if (st.status.ok()) {
        {
          ScopedTimer timer(clock_, &st.cpu_work_nanos);
          Status fs = st.builder->Finish();
          if (!fs.ok()) st.status = fs;
          st.chunk_file->FlushPartialChunk();
        }
        for (size_t chunk : st.pending_chunks) {
          st.io_wait_nanos += model_->OnWrite(chunk, IoClass::kFlush);
          st.ssd_bytes_written += chunk;
          ++st.s3_writes;
        }
        st.pending_chunks.clear();
      }
      cpu_busy_nanos_.fetch_add(st.cpu_work_nanos);
      st.done = true;
    });
  }
  for (auto& t : threads) t.join();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Coroutine engines
// ---------------------------------------------------------------------------

namespace {

struct WorkerContext {
  CoroScheduler* scheduler = nullptr;
  SsdModel* model = nullptr;
  IoGate* gate = nullptr;
  const MajorCompactionOptions* options = nullptr;
  const InternalKeyComparator* icmp = nullptr;

  std::deque<MajorCompactor::SubtaskState*> queue;  // unclaimed subtasks
  int active_compaction_coroutines = 0;

  // Flush-coroutine plumbing (PM-Blade engine only).
  std::deque<std::pair<MajorCompactor::SubtaskState*, size_t>> flush_queue;
  std::unique_ptr<CoroScheduler::Event> flush_event;
  bool use_flush_coroutine = false;
};

/// S3 policy for the naive coroutine engine: the producing coroutine awaits
/// its own writes. For PM-Blade, chunks go to the flush queue instead.
Task CompactionCoroutine(WorkerContext* ctx) {
  ++ctx->active_compaction_coroutines;
  while (!ctx->queue.empty()) {
    MajorCompactor::SubtaskState* st = ctx->queue.front();
    ctx->queue.pop_front();

    bool more = true;
    while (more) {
      // S2: merge a slice of records.
      more = ProcessSlice(st, *ctx->icmp, ctx->options->records_per_slice,
                          st->drop_tombstones,
                          ctx->options->oldest_snapshot);
      if (!st->status.ok()) break;

      // S1: await reads covering consumed SSD input bytes.
      while (st->ssd_bytes_consumed - st->ssd_bytes_charged >=
             ctx->options->read_block_bytes) {
        auto ticket = ctx->model->BeginIo(false, ctx->options->read_block_bytes,
                                          IoClass::kCompaction);
        co_await ctx->scheduler->SleepUntil(ticket.complete_at_nanos);
        ctx->model->EndIo(ticket);
        st->ssd_bytes_charged += ctx->options->read_block_bytes;
        ++st->s1_reads;
      }

      // S3: per engine policy.
      if (!st->pending_chunks.empty()) {
        if (ctx->use_flush_coroutine) {
          for (size_t chunk : st->pending_chunks) {
            ctx->flush_queue.emplace_back(st, chunk);
          }
          st->pending_chunks.clear();
          ctx->flush_event->NotifyAll();
        } else {
          for (size_t chunk : st->pending_chunks) {
            auto ticket = ctx->model->BeginIo(true, chunk, IoClass::kFlush);
            co_await ctx->scheduler->SleepUntil(ticket.complete_at_nanos);
            ctx->model->EndIo(ticket);
            st->ssd_bytes_written += chunk;
            ++st->s3_writes;
          }
          st->pending_chunks.clear();
        }
      }

      // Interleave with the other compaction coroutines on this worker.
      co_await ctx->scheduler->Yield();
    }

    if (st->status.ok()) {
      Status fs = st->builder->Finish();
      if (!fs.ok()) st->status = fs;
      st->chunk_file->FlushPartialChunk();
      if (ctx->use_flush_coroutine) {
        for (size_t chunk : st->pending_chunks) {
          ctx->flush_queue.emplace_back(st, chunk);
        }
        st->pending_chunks.clear();
        ctx->flush_event->NotifyAll();
      } else {
        for (size_t chunk : st->pending_chunks) {
          auto ticket = ctx->model->BeginIo(true, chunk, IoClass::kFlush);
          co_await ctx->scheduler->SleepUntil(ticket.complete_at_nanos);
          ctx->model->EndIo(ticket);
          st->ssd_bytes_written += chunk;
          ++st->s3_writes;
        }
        st->pending_chunks.clear();
      }
    }
    st->done = true;
  }
  --ctx->active_compaction_coroutines;
  if (ctx->flush_event != nullptr) {
    ctx->flush_event->NotifyAll();  // let the flush coroutine re-check exit
  }
}

/// The dedicated flush coroutine (PM-Blade): drains S3 writes, keeping up
/// to q_flush = max(q - q_comp - q_cli, 0) writes in flight so the device
/// stays busy whenever foreground traffic leaves it headroom.
Task FlushCoroutine(WorkerContext* ctx) {
  // Poll quantum when the gate is closed; short relative to I/O latencies.
  constexpr uint64_t kGatePollNanos = 5'000;
  struct Inflight {
    SsdModel::Ticket ticket;
    MajorCompactor::SubtaskState* st;
    size_t chunk;
  };
  std::vector<Inflight> inflight;

  while (true) {
    // Issue as many writes as the gate allows.
    while (!ctx->flush_queue.empty() && ctx->gate->FlushBudget() > 0) {
      auto [st, chunk] = ctx->flush_queue.front();
      ctx->flush_queue.pop_front();
      inflight.push_back(
          Inflight{ctx->model->BeginIo(true, chunk, IoClass::kFlush), st,
                   chunk});
    }

    if (!inflight.empty()) {
      // Await the earliest completion, then retire everything due.
      uint64_t earliest = UINT64_MAX;
      for (const auto& io : inflight) {
        earliest = std::min(earliest, io.ticket.complete_at_nanos);
      }
      co_await ctx->scheduler->SleepUntil(earliest);
      uint64_t now = ctx->scheduler->clock()->NowNanos();
      for (size_t i = 0; i < inflight.size();) {
        if (inflight[i].ticket.complete_at_nanos <= now) {
          ctx->model->EndIo(inflight[i].ticket);
          inflight[i].st->ssd_bytes_written += inflight[i].chunk;
          ++inflight[i].st->s3_writes;
          inflight[i] = inflight.back();
          inflight.pop_back();
        } else {
          ++i;
        }
      }
      continue;
    }

    if (ctx->flush_queue.empty()) {
      if (ctx->active_compaction_coroutines == 0) break;
      co_await *ctx->flush_event;
      continue;
    }
    // Queue non-empty but the gate is closed: back off briefly.
    co_await ctx->scheduler->SleepFor(kGatePollNanos);
  }
}

}  // namespace

Status MajorCompactor::RunCoroutineEngine(std::vector<SubtaskState>& states,
                                          bool use_flush_coroutine) {
  const int c = std::max(options_.worker_threads, 1);
  // k = max(floor(q / c), 1) compaction coroutines per worker.
  const int k = std::max(options_.max_io_q / c, 1);

  std::vector<std::thread> workers;
  std::vector<Status> worker_status(c);
  for (int w = 0; w < c; ++w) {
    workers.emplace_back([this, w, c, k, &states, use_flush_coroutine,
                          &worker_status] {
      CoroScheduler scheduler(clock_);
      IoGate gate(model_, options_.max_io_q, options_.event_bus);
      WorkerContext ctx;
      ctx.scheduler = &scheduler;
      ctx.model = model_;
      ctx.gate = &gate;
      ctx.options = &options_;
      ctx.icmp = factory_->options().icmp;
      ctx.use_flush_coroutine = use_flush_coroutine;
      ctx.flush_event.reset(new CoroScheduler::Event(&scheduler));

      // Round-robin assignment of subtasks to workers.
      for (size_t i = w; i < states.size(); i += c) {
        ctx.queue.push_back(&states[i]);
      }
      if (ctx.queue.empty()) return;

      int spawned = std::min<int>(k, static_cast<int>(ctx.queue.size()));
      for (int i = 0; i < spawned; ++i) {
        scheduler.Spawn(CompactionCoroutine(&ctx));
      }
      if (use_flush_coroutine) {
        scheduler.Spawn(FlushCoroutine(&ctx));
      }
      scheduler.Run();
      cpu_busy_nanos_.fetch_add(scheduler.cpu_busy_nanos());
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("pmblade.compaction.major.coro_resumes")
            ->Inc(scheduler.resumes());
      }
      worker_status[w] = Status::OK();
    });
  }
  for (auto& t : workers) t.join();
  return Status::OK();
}

}  // namespace pmblade
