// MergingIterator: a forward/backward mergesort cursor over N child
// iterators, used by every compaction (minor, internal, major) and by DB
// scans.

#ifndef PMBLADE_COMPACTION_MERGING_ITERATOR_H_
#define PMBLADE_COMPACTION_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "util/comparator.h"
#include "util/iterator.h"

namespace pmblade {

/// Takes ownership of the children. `comparator` must order the children's
/// keys (typically the InternalKeyComparator). Children with equal keys are
/// returned in child-index order, so callers must place newer sources first.
Iterator* NewMergingIterator(const Comparator* comparator,
                             std::vector<Iterator*> children);

}  // namespace pmblade

#endif  // PMBLADE_COMPACTION_MERGING_ITERATOR_H_
