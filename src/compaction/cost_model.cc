#include "compaction/cost_model.h"

#include <algorithm>
#include <numeric>

namespace pmblade {

CostDecision CostModel::EvaluateInternal(const PartitionCounters& p) const {
  CostDecision d;
  // Eq. 1: n̂ʳ * (n/2) * I_b - I_p / t̂_p > 0
  d.eq1_benefit_rate =
      p.reads_per_sec * (static_cast<double>(p.unsorted_tables) / 2.0) *
      params_.i_b;
  d.eq1_cost_rate = params_.i_p / params_.t_p;
  // Eq. 2 with n_bef ≈ n^w and the duplicate count (n_bef - n_aft) ≈ n^u:
  // updates are what create redundant versions in the PM tables.
  d.eq2_ssd_savings = static_cast<double>(p.updates) * params_.i_s;
  d.eq2_pm_cost = static_cast<double>(p.writes) * params_.i_p;

  d.gate_passed = p.unsorted_tables >= params_.min_unsorted_for_internal;
  d.eq1_triggered = d.gate_passed && d.eq1_benefit_rate > d.eq1_cost_rate;
  d.eq2_triggered = d.gate_passed && p.size_bytes >= params_.tau_w &&
                    d.eq2_ssd_savings > d.eq2_pm_cost;
  return d;
}

uint64_t CostModel::AdaptiveTauT(uint64_t reads, uint64_t writes,
                                 double max_factor) const {
  if (max_factor < 1.0) max_factor = 1.0;
  // Sum in double: these counters accumulate for the process lifetime, and
  // reads + writes in uint64 wraps for counters past 2^63 — a write-heavy
  // mix would then read as read-dominated and inflate τ_t.
  double total = static_cast<double>(reads) + static_cast<double>(writes);
  if (total == 0.0) return base_tau_t();
  double read_share = static_cast<double>(reads) / total;
  // Linear ramp: read_share <= 0.5 -> 1.0x; read_share = 1.0 -> max_factor.
  double scale = 1.0;
  if (read_share > 0.5) {
    scale = 1.0 + (read_share - 0.5) * 2.0 * (max_factor - 1.0);
  }
  double scaled = static_cast<double>(base_tau_t()) * scale;
  // Casting a double above 2^64 to uint64_t is undefined; saturate instead.
  if (scaled >= 18446744073709551615.0) return UINT64_MAX;
  return static_cast<uint64_t>(scaled);
}

std::vector<size_t> CostModel::SelectRetained(
    const std::vector<PartitionCounters>& partitions,
    uint64_t tau_t_override) const {
  const uint64_t budget =
      tau_t_override != 0 ? tau_t_override : base_tau_t();
  std::vector<size_t> order(partitions.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // Hottest first: reads per byte.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ha = partitions[a].size_bytes > 0
                    ? static_cast<double>(partitions[a].reads) /
                          static_cast<double>(partitions[a].size_bytes)
                    : 0.0;
    double hb = partitions[b].size_bytes > 0
                    ? static_cast<double>(partitions[b].reads) /
                          static_cast<double>(partitions[b].size_bytes)
                    : 0.0;
    if (ha != hb) return ha > hb;
    return partitions[a].partition_id < partitions[b].partition_id;
  });

  std::vector<size_t> retained;
  uint64_t used = 0;
  for (size_t idx : order) {
    uint64_t s = partitions[idx].size_bytes;
    // used <= budget always holds, so budget - used cannot underflow; the
    // naive `used + s <= budget` wraps when s is near UINT64_MAX and would
    // admit a partition far over budget.
    if (s <= budget - used) {
      retained.push_back(idx);
      used += s;
    }
  }
  std::sort(retained.begin(), retained.end());
  return retained;
}

}  // namespace pmblade
