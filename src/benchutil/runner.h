// BenchEnv: shared device simulators + engine factory for the benchmark
// harnesses. Centralizes the paper's system configurations so every bench
// builds engines the same way:
//
//   PMBlade       — PM table level-0, internal compaction, cost models,
//                   coroutine major compaction        (all techniques)
//   PMBlade-PM    — PM level-0 but the conventional whole-level compaction
//                   policy (no internal compaction, no cost models)
//   PMBlade-SSD   — level-0 on the SSD (no PM at all)
//   PMB-P         — PM level-0 with array tables, no internal compaction
//   PMB-PI        — + internal compaction & cost models (array tables)
//   PMB-PIC       — + compressed PM tables (thread-based major compaction)
//   RocksDB-style — the conventional leveled LSM baseline
//   MatrixKV      — matrix-container baseline (small or large PM budget)

#ifndef PMBLADE_BENCHUTIL_RUNNER_H_
#define PMBLADE_BENCHUTIL_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/leveled_db.h"
#include "baseline/matrixkv_db.h"
#include "core/db.h"
#include "env/sim_env.h"

namespace pmblade {
namespace bench {

enum class EngineConfig {
  kPmBlade,
  kPmBladePm,
  kPmBladeSsd,
  kPmbP,
  kPmbPI,
  kPmbPIC,
  kRocksStyle,
  kMatrixKvSmall,
  kMatrixKvLarge,
};

const char* EngineConfigName(EngineConfig config);

struct BenchEnvOptions {
  std::string root;  // working directory for DB files + pools
  bool inject_ssd_latency = true;
  bool inject_pm_latency = true;
  uint64_t pm_pool_capacity = 256ull << 20;
  size_t memtable_bytes = 1 << 20;
  /// Level-0 budget sizing for the PM-Blade configs (tau_m / tau_t) and the
  /// MatrixKV budgets. "large" mimics the 80 GB configs, "small" the 8 GB
  /// MatrixKV default, at bench scale.
  uint64_t l0_budget_large = 48ull << 20;
  uint64_t l0_budget_small = 5ull << 20;
  /// DRAM block cache for SSD-resident tables. Scaled down with the bench
  /// data sizes (the paper's datasets dwarf its cache; a bench-sized cache
  /// must not swallow the whole working set or SSD configs never touch the
  /// device).
  size_t block_cache_bytes = 256 << 10;
  /// Bloom bits per key for SSTable filter blocks and the PM tables' DRAM
  /// whole-table filters; <= 0 disables filters (the no-filter baseline of
  /// `benchmark_kv --read_skew`).
  int bloom_bits_per_key = 10;
  /// When nonzero, the PM-Blade configs run the MemoryArbiter over this
  /// budget (memtable quota / block cache / keep-set τ_t).
  uint64_t memory_budget_bytes = 0;
  uint64_t arbiter_interval_ms = 250;
  /// When false, the flush path blocks on the compaction scheduler draining
  /// (the historical inline-compaction stall). Only meaningful for the
  /// PM-Blade configs; used by `benchmark_kv --compaction_stall` for A/B
  /// comparison against the backgrounded default.
  bool background_compaction = true;
  /// Compaction scheduler pool size and per-victim key-range subcompaction
  /// fan-out for the PM-Blade configs (1/1 = the historical single-worker,
  /// one-slice pipeline). Swept by `benchmark_kv --compaction_parallel`.
  int compaction_workers = 1;
  int max_subcompactions = 1;
  /// SSD compaction shape for the PM-Blade configs: "leveled" (default),
  /// "tiered" or "lazy_leveling" (see Options::compaction_policy). Swept by
  /// `benchmark_kv --benchmarks=policy_sweep`. Non-leveled values make the
  /// conventional-policy config (PMBlade-PM, leveled-only) fail to open;
  /// the baseline engines ignore it.
  std::string compaction_policy = "leveled";
  uint32_t compaction_size_ratio = 4;
  uint32_t max_ssd_levels = 3;
  /// Shard count for the PM-Blade configs (1 = the classic single engine;
  /// N > 1 opens a ShardedDB). Per-shard knobs (memtable_bytes,
  /// pm_pool_capacity, the cost budgets) apply to EACH shard. Ignored by
  /// the baseline engines.
  uint32_t num_shards = 1;
  /// Cross-shard WriteBatch atomicity (two-phase commit through the shard
  /// WALs). Benches flip it off to measure the legacy non-atomic fan-out.
  bool atomic_cross_shard_batches = true;
  std::vector<std::string> partition_boundaries;
};

/// Owns one SSD model + SimEnv shared by the engine under test, plus the
/// currently open engine. Construct one per configuration run.
class BenchEnv {
 public:
  explicit BenchEnv(const BenchEnvOptions& options);
  ~BenchEnv();

  /// Destroys any previous state under root and opens a fresh engine.
  Status OpenEngine(EngineConfig config, KvEngine** engine);

  /// Total bytes written to the simulated SSD since the engine opened.
  uint64_t SsdBytesWritten() const { return model_->bytes_written(); }
  /// Total bytes written to PM (0 for PM-less configs).
  uint64_t PmBytesWritten() const;
  /// User payload bytes accepted by the engine.
  uint64_t UserBytesWritten() const;
  double PmHitRatio() const;
  const DbStatistics* statistics() const;

  SsdModel* ssd_model() { return model_.get(); }
  SimEnv* sim_env() { return sim_env_.get(); }
  DB* pmblade_db() { return db_.get(); }
  MatrixKvDb* matrixkv_db() { return matrix_.get(); }
  LeveledDb* leveled_db() { return leveled_.get(); }
  EngineConfig config() const { return config_; }

  /// Benches that reopen the engine per measurement point (write_scaling,
  /// compaction_stall) may tweak these between OpenEngine calls. Takes
  /// effect on the next OpenEngine.
  BenchEnvOptions* mutable_options() { return &options_; }

  /// Forces everything down to its resting place (flush; engines compact on
  /// their own policies).
  Status FlushEngine();

 private:
  void CloseAndCleanup();

  BenchEnvOptions options_;
  std::unique_ptr<SsdModel> model_;
  std::unique_ptr<SimEnv> sim_env_;
  EngineConfig config_ = EngineConfig::kPmBlade;

  std::unique_ptr<DB> db_;
  std::unique_ptr<MatrixKvDb> matrix_;
  std::unique_ptr<LeveledDb> leveled_;
  KvEngine* engine_ = nullptr;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_RUNNER_H_
