#include "benchutil/reporter.h"

#include <cstdio>
#include <cstring>

namespace pmblade {
namespace bench {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    snprintf(buf, sizeof(buf), "%.2f GiB", bytes / double(1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    snprintf(buf, sizeof(buf), "%.2f MiB", bytes / double(1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    snprintf(buf, sizeof(buf), "%.2f KiB", bytes / double(1ull << 10));
  } else {
    snprintf(buf, sizeof(buf), "%llu B",
             static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string TablePrinter::FmtNanos(double nanos) {
  char buf[64];
  if (nanos >= 1e9) {
    snprintf(buf, sizeof(buf), "%.2f s", nanos / 1e9);
  } else if (nanos >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2f ms", nanos / 1e6);
  } else if (nanos >= 1e3) {
    snprintf(buf, sizeof(buf), "%.2f us", nanos / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f ns", nanos);
  }
  return buf;
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const char* cell = c < row.size() ? row[c].c_str() : "";
      printf("%-*s%s", static_cast<int>(widths[c]), cell,
             c + 1 < widths.size() ? "  " : "\n");
    }
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i + 2 < total; ++i) putchar('-');
  putchar('\n');
  for (const auto& row : rows_) print_row(row);
  fflush(stdout);
}

}  // namespace bench
}  // namespace pmblade
