// SIGINT/SIGTERM handling for the CLI tools: long runs that are interrupted
// finish the current unit of work and emit their partial results (seed log,
// partial BENCH_*.json) instead of dying mid-write.

#ifndef PMBLADE_BENCHUTIL_INTERRUPT_H_
#define PMBLADE_BENCHUTIL_INTERRUPT_H_

namespace pmblade {
namespace bench {

/// Called from the signal handler — must be async-signal-safe (e.g.
/// Server::RequestShutdown, which only does an atomic store + write()).
typedef void (*InterruptCallback)();

/// Installs SIGINT/SIGTERM handlers that latch the signal number and invoke
/// `callback` (optional). Handlers are installed WITHOUT SA_RESTART so
/// blocking syscalls return EINTR and polling loops observe the flag
/// promptly. A second signal restores default disposition first, so
/// Ctrl-C Ctrl-C still kills a wedged tool.
void InstallInterruptHandler(InterruptCallback callback = nullptr);

/// True once SIGINT or SIGTERM arrived.
bool InterruptRequested();

/// The latched signal number, or 0. Tools use 128+signal as exit status.
int InterruptSignal();

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_INTERRUPT_H_
