// Record/index-table codecs over the key-value store — the database-table
// layer the paper's benchmark_kv tool adds on top of db_bench ("support for
// creating record tables and index tables on key-value stores").
//
// A record table stores rows under "r<table>|<pk>" with the row encoded as
// length-prefixed column values. An index table maps
// "i<table>_<index>|<column-value>|<pk>" -> <pk>, so an index query is a
// prefix scan followed by point reads — exactly the read pattern of the
// paper's workload (Section VI-D).

#ifndef PMBLADE_BENCHUTIL_TABLE_CODEC_H_
#define PMBLADE_BENCHUTIL_TABLE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/kv_engine.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {
namespace bench {

/// Schema of one record table: column count and which columns carry
/// secondary indexes.
struct TableSchema {
  uint32_t table_id = 0;
  uint32_t num_columns = 10;
  std::vector<uint32_t> indexed_columns;  // column ids with an index table
};

/// Encodes/decodes rows and computes the KV-level keys for a schema.
class TableCodec {
 public:
  explicit TableCodec(const TableSchema& schema) : schema_(schema) {}

  // ---- key construction ----
  std::string RowKey(uint64_t primary_key) const;
  std::string IndexKey(uint32_t column, const Slice& column_value,
                       uint64_t primary_key) const;
  /// Prefix matching all index entries of `column` with `column_value`.
  std::string IndexPrefix(uint32_t column, const Slice& column_value) const;
  /// Prefix matching all index entries of `column`.
  std::string IndexColumnPrefix(uint32_t column) const;

  // ---- row encoding ----
  /// Serializes `columns` (one value per column, schema order) into *row.
  void EncodeRow(const std::vector<std::string>& columns,
                 std::string* row) const;
  /// Parses an encoded row. Returns false on malformed input.
  bool DecodeRow(const Slice& row, std::vector<std::string>* columns) const;

  // ---- engine-level operations ----
  /// Writes the row and all its index entries (old index entries for
  /// changed values are superseded, not removed — LSM semantics; index
  /// scans must verify through the row, as the paper's workload does).
  Status InsertRow(KvEngine* engine, uint64_t primary_key,
                   const std::vector<std::string>& columns) const;

  /// Reads and decodes a row.
  Status GetRow(KvEngine* engine, uint64_t primary_key,
                std::vector<std::string>* columns) const;

  /// Updates one column of an existing row (read-modify-write), refreshing
  /// the column's index entry if indexed.
  Status UpdateColumn(KvEngine* engine, uint64_t primary_key,
                      uint32_t column, const std::string& value) const;

  /// Index query: scans up to `limit` index entries for `column_value` and
  /// point-reads each referenced row. Returns the matching primary keys.
  Status IndexQuery(KvEngine* engine, uint32_t column,
                    const Slice& column_value, int limit,
                    std::vector<uint64_t>* primary_keys) const;

  const TableSchema& schema() const { return schema_; }

  /// Parses the primary key out of a row or index key; false if malformed.
  static bool ParsePrimaryKey(const Slice& key, uint64_t* primary_key);

 private:
  bool IsIndexed(uint32_t column) const;

  TableSchema schema_;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_TABLE_CODEC_H_
