#include "benchutil/ycsb.h"

#include <memory>

#include "util/clock.h"

namespace pmblade {
namespace bench {

const char* YcsbName(YcsbWorkload workload) {
  switch (workload) {
    case YcsbWorkload::kLoad: return "Load";
    case YcsbWorkload::kA: return "A";
    case YcsbWorkload::kB: return "B";
    case YcsbWorkload::kC: return "C";
    case YcsbWorkload::kD: return "D";
    case YcsbWorkload::kE: return "E";
    case YcsbWorkload::kF: return "F";
  }
  return "?";
}

namespace {

OpMix MixFor(YcsbWorkload workload) {
  switch (workload) {
    case YcsbWorkload::kLoad: return {.insert = 1.0};
    case YcsbWorkload::kA: return {.read = 0.5, .update = 0.5};
    case YcsbWorkload::kB: return {.read = 0.95, .update = 0.05};
    case YcsbWorkload::kC: return {.read = 1.0};
    case YcsbWorkload::kD: return {.read = 0.95, .insert = 0.05};
    case YcsbWorkload::kE: return {.insert = 0.05, .scan = 0.95};
    case YcsbWorkload::kF: return {.read = 0.5, .read_modify_write = 0.5};
  }
  return {};
}

Distribution DistFor(YcsbWorkload workload) {
  return workload == YcsbWorkload::kD ? Distribution::kLatest
                                      : Distribution::kZipfian;
}

}  // namespace

Status YcsbLoad(KvEngine* engine, const YcsbOptions& options,
                YcsbResult* result) {
  *result = YcsbResult{};
  result->workload = YcsbWorkload::kLoad;
  Clock* clock = SystemClock();
  KeySpec spec;
  spec.prefix = options.key_prefix;
  spec.num_keys = options.record_count;
  spec.seed = options.seed;
  KeyGenerator keys(spec);
  ValueGenerator values(options.value_size, options.seed);

  const uint64_t start = clock->NowNanos();
  for (uint64_t i = 0; i < options.record_count; ++i) {
    const uint64_t op_start = clock->NowNanos();
    PMBLADE_RETURN_IF_ERROR(engine->Put(keys.KeyAt(i), values.For(i)));
    result->insert_latency.Add(clock->NowNanos() - op_start);
  }
  result->operations = options.record_count;
  result->duration_nanos = clock->NowNanos() - start;
  return Status::OK();
}

Status YcsbRun(KvEngine* engine, YcsbWorkload workload,
               const YcsbOptions& options, YcsbResult* result) {
  *result = YcsbResult{};
  result->workload = workload;
  Clock* clock = SystemClock();

  KeySpec spec;
  spec.prefix = options.key_prefix;
  spec.num_keys = options.record_count;
  spec.distribution = DistFor(workload);
  spec.zipf_theta = options.zipf_theta;
  spec.seed = options.seed + 1;
  KeyGenerator keys(spec);
  ValueGenerator values(options.value_size, options.seed + 2);
  OpChooser chooser(MixFor(workload), options.seed + 3);
  Random rng(options.seed + 4);

  uint64_t insert_cursor = options.record_count;

  const uint64_t start = clock->NowNanos();
  for (uint64_t i = 0; i < options.operation_count; ++i) {
    OpType op = chooser.Next();
    const uint64_t op_start = clock->NowNanos();
    switch (op) {
      case OpType::kRead: {
        std::string value;
        Status s = engine->Get(keys.Next(), &value);
        if (!s.ok() && !s.IsNotFound()) return s;
        result->read_latency.Add(clock->NowNanos() - op_start);
        break;
      }
      case OpType::kUpdate: {
        uint64_t index = keys.NextIndex();
        PMBLADE_RETURN_IF_ERROR(
            engine->Put(keys.KeyAt(index), values.For(index)));
        result->update_latency.Add(clock->NowNanos() - op_start);
        break;
      }
      case OpType::kInsert: {
        uint64_t index = insert_cursor++;
        PMBLADE_RETURN_IF_ERROR(
            engine->Put(keys.KeyAt(index), values.For(index)));
        result->insert_latency.Add(clock->NowNanos() - op_start);
        break;
      }
      case OpType::kScan: {
        std::unique_ptr<Iterator> it(engine->NewScanIterator());
        it->Seek(keys.Next());
        int len = 1 + static_cast<int>(rng.Uniform(options.max_scan_length));
        for (int j = 0; j < len && it->Valid(); ++j) {
          it->Next();
        }
        PMBLADE_RETURN_IF_ERROR(it->status());
        result->scan_latency.Add(clock->NowNanos() - op_start);
        break;
      }
      case OpType::kReadModifyWrite: {
        uint64_t index = keys.NextIndex();
        std::string key = keys.KeyAt(index);
        std::string value;
        Status s = engine->Get(key, &value);
        if (!s.ok() && !s.IsNotFound()) return s;
        PMBLADE_RETURN_IF_ERROR(engine->Put(key, values.For(index)));
        result->update_latency.Add(clock->NowNanos() - op_start);
        break;
      }
    }
  }
  result->operations = options.operation_count;
  result->duration_nanos = clock->NowNanos() - start;
  return Status::OK();
}

}  // namespace bench
}  // namespace pmblade
