#include "benchutil/flags.h"

#include <cstdlib>
#include <cstring>

namespace pmblade {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (strncmp(arg, "--", 2) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const char* eq = strchr(arg + 2, '=');
    if (eq != nullptr) {
      kv_.emplace_back(std::string(arg + 2, eq - arg - 2),
                       std::string(eq + 1));
    } else {
      kv_.emplace_back(std::string(arg + 2), "true");
    }
  }
}

bool Flags::Has(const std::string& name) const {
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

int64_t Flags::Int(const std::string& name, int64_t default_value) const {
  for (const auto& [k, v] : kv_) {
    if (k == name) return strtoll(v.c_str(), nullptr, 10);
  }
  return default_value;
}

double Flags::Double(const std::string& name, double default_value) const {
  for (const auto& [k, v] : kv_) {
    if (k == name) return strtod(v.c_str(), nullptr);
  }
  return default_value;
}

bool Flags::Bool(const std::string& name, bool default_value) const {
  for (const auto& [k, v] : kv_) {
    if (k == name) return v == "true" || v == "1";
  }
  return default_value;
}

std::string Flags::Str(const std::string& name,
                       const std::string& default_value) const {
  for (const auto& [k, v] : kv_) {
    if (k == name) return v;
  }
  return default_value;
}

std::vector<int64_t> Flags::IntList(
    const std::string& name, std::vector<int64_t> default_value) const {
  for (const auto& [k, v] : kv_) {
    if (k != name) continue;
    std::vector<int64_t> out;
    const char* p = v.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      long long parsed = strtoll(p, &end, 10);
      if (end != p) out.push_back(parsed);
      p = end;
      while (*p == ',' || *p == ' ') ++p;
    }
    return out;
  }
  return default_value;
}

std::vector<std::string> Flags::Unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    bool found = false;
    for (const auto& name : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) out.push_back(k);
  }
  return out;
}

}  // namespace bench
}  // namespace pmblade
