// Shared --flag=value command-line parsing for the bench/CLI tools
// (benchmark_kv, crash_stress, pmblade_server, net_bench).

#ifndef PMBLADE_BENCHUTIL_FLAGS_H_
#define PMBLADE_BENCHUTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmblade {
namespace bench {

/// Command-line flag access: --name=value (or bare --name, read as "true").
/// Anything not starting with "--" is collected into positional(). Typed
/// getters fall back to the given default when the flag is absent.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  int64_t Int(const std::string& name, int64_t default_value) const;
  double Double(const std::string& name, double default_value) const;
  bool Bool(const std::string& name, bool default_value) const;
  std::string Str(const std::string& name,
                  const std::string& default_value) const;

  /// Comma-separated integer list, e.g. --connections=1,8,32. Returns
  /// `default_value` when the flag is absent; empty / malformed entries are
  /// skipped.
  std::vector<int64_t> IntList(const std::string& name,
                               std::vector<int64_t> default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that are not in `known` — tools that want strict parsing print
  /// these and exit. Returns flag names without the leading "--".
  std::vector<std::string> Unknown(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> positional_;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_FLAGS_H_
