#include "benchutil/table_codec.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/coding.h"

namespace pmblade {
namespace bench {

std::string TableCodec::RowKey(uint64_t primary_key) const {
  char buf[40];
  snprintf(buf, sizeof(buf), "r%03u|%016llx", schema_.table_id,
           static_cast<unsigned long long>(primary_key));
  return buf;
}

std::string TableCodec::IndexColumnPrefix(uint32_t column) const {
  char buf[24];
  snprintf(buf, sizeof(buf), "i%03u_%02u|", schema_.table_id, column);
  return buf;
}

std::string TableCodec::IndexPrefix(uint32_t column,
                                    const Slice& column_value) const {
  std::string key = IndexColumnPrefix(column);
  key.append(column_value.data(), column_value.size());
  key.push_back('|');
  return key;
}

std::string TableCodec::IndexKey(uint32_t column, const Slice& column_value,
                                 uint64_t primary_key) const {
  std::string key = IndexPrefix(column, column_value);
  char buf[24];
  snprintf(buf, sizeof(buf), "%016llx",
           static_cast<unsigned long long>(primary_key));
  key += buf;
  return key;
}

void TableCodec::EncodeRow(const std::vector<std::string>& columns,
                           std::string* row) const {
  row->clear();
  PutVarint32(row, static_cast<uint32_t>(columns.size()));
  for (const auto& value : columns) {
    PutLengthPrefixedSlice(row, value);
  }
}

bool TableCodec::DecodeRow(const Slice& row,
                           std::vector<std::string>* columns) const {
  columns->clear();
  Slice in = row;
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return false;
  columns->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice value;
    if (!GetLengthPrefixedSlice(&in, &value)) return false;
    columns->push_back(value.ToString());
  }
  return in.empty();
}

bool TableCodec::IsIndexed(uint32_t column) const {
  return std::find(schema_.indexed_columns.begin(),
                   schema_.indexed_columns.end(),
                   column) != schema_.indexed_columns.end();
}

Status TableCodec::InsertRow(
    KvEngine* engine, uint64_t primary_key,
    const std::vector<std::string>& columns) const {
  if (columns.size() != schema_.num_columns) {
    return Status::InvalidArgument("column count does not match schema");
  }
  std::string row;
  EncodeRow(columns, &row);
  PMBLADE_RETURN_IF_ERROR(engine->Put(RowKey(primary_key), row));
  char pk[24];
  snprintf(pk, sizeof(pk), "%016llx",
           static_cast<unsigned long long>(primary_key));
  for (uint32_t column : schema_.indexed_columns) {
    PMBLADE_RETURN_IF_ERROR(
        engine->Put(IndexKey(column, columns[column], primary_key), pk));
  }
  return Status::OK();
}

Status TableCodec::GetRow(KvEngine* engine, uint64_t primary_key,
                          std::vector<std::string>* columns) const {
  std::string row;
  PMBLADE_RETURN_IF_ERROR(engine->Get(RowKey(primary_key), &row));
  if (!DecodeRow(row, columns)) {
    return Status::Corruption("malformed row encoding");
  }
  return Status::OK();
}

Status TableCodec::UpdateColumn(KvEngine* engine, uint64_t primary_key,
                                uint32_t column,
                                const std::string& value) const {
  if (column >= schema_.num_columns) {
    return Status::InvalidArgument("column out of range");
  }
  std::vector<std::string> columns;
  PMBLADE_RETURN_IF_ERROR(GetRow(engine, primary_key, &columns));
  columns[column] = value;
  std::string row;
  EncodeRow(columns, &row);
  PMBLADE_RETURN_IF_ERROR(engine->Put(RowKey(primary_key), row));
  if (IsIndexed(column)) {
    char pk[24];
    snprintf(pk, sizeof(pk), "%016llx",
             static_cast<unsigned long long>(primary_key));
    PMBLADE_RETURN_IF_ERROR(
        engine->Put(IndexKey(column, value, primary_key), pk));
  }
  return Status::OK();
}

Status TableCodec::IndexQuery(KvEngine* engine, uint32_t column,
                              const Slice& column_value, int limit,
                              std::vector<uint64_t>* primary_keys) const {
  primary_keys->clear();
  if (!IsIndexed(column)) {
    return Status::InvalidArgument("column has no index");
  }
  std::string prefix = IndexPrefix(column, column_value);
  std::unique_ptr<Iterator> it(engine->NewScanIterator());
  for (it->Seek(prefix);
       it->Valid() && it->key().starts_with(prefix) &&
       static_cast<int>(primary_keys->size()) < limit;
       it->Next()) {
    uint64_t pk = 0;
    if (!ParsePrimaryKey(it->key(), &pk)) {
      return Status::Corruption("malformed index key");
    }
    // Verify through the row: superseded index entries (the column changed
    // since) must not count as matches.
    std::vector<std::string> columns;
    Status s = GetRow(engine, pk, &columns);
    if (s.IsNotFound()) continue;  // row deleted
    PMBLADE_RETURN_IF_ERROR(s);
    if (Slice(columns[column]) == column_value) {
      primary_keys->push_back(pk);
    }
  }
  return it->status();
}

bool TableCodec::ParsePrimaryKey(const Slice& key, uint64_t* primary_key) {
  // The primary key is the 16-hex-digit suffix of both row and index keys.
  if (key.size() < 16) return false;
  const char* hex = key.data() + key.size() - 16;
  uint64_t value = 0;
  for (int i = 0; i < 16; ++i) {
    char c = hex[i];
    value <<= 4;
    if (c >= '0' && c <= '9') value |= c - '0';
    else if (c >= 'a' && c <= 'f') value |= c - 'a' + 10;
    else return false;
  }
  *primary_key = value;
  return true;
}

}  // namespace bench
}  // namespace pmblade
