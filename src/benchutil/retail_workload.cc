#include "benchutil/retail_workload.h"

#include <cstdio>
#include <memory>

#include "util/clock.h"
#include "util/zipfian.h"

namespace pmblade {
namespace bench {

RetailWorkload::RetailWorkload(const RetailOptions& options)
    : options_(options), rng_(options.seed), clock_(SystemClock()) {}

std::string RetailWorkload::RowKey(int table, uint64_t order) const {
  char buf[48];
  snprintf(buf, sizeof(buf), "t%02d|o%010llu", table,
           static_cast<unsigned long long>(order));
  return buf;
}

std::string RetailWorkload::IndexKey(int table, int index,
                                     uint64_t column_value,
                                     uint64_t order) const {
  char buf[80];
  snprintf(buf, sizeof(buf), "x%02d_%d|c%08llu|o%010llu", table, index,
           static_cast<unsigned long long>(column_value),
           static_cast<unsigned long long>(order));
  return buf;
}

uint64_t RetailWorkload::PickRecentOrder() {
  if (next_order_ == 0) return 0;
  // Zipf rank over recency: rank 0 = newest order.
  ZipfianGenerator zipf(next_order_, options_.recency_theta,
                        options_.seed + rng_.Uniform(1u << 20));
  uint64_t rank = zipf.Next();
  return next_order_ - 1 - rank;
}

Status RetailWorkload::InsertOrder(KvEngine* engine, uint64_t order,
                                   Histogram* latency) {
  const uint64_t start = clock_->NowNanos();
  // An order touches 3-5 tables; the payload is split across them.
  int tables_touched = 3 + static_cast<int>(rng_.Uniform(3));
  size_t row_bytes = options_.bytes_per_order / tables_touched;

  for (int t = 0; t < tables_touched; ++t) {
    int table = static_cast<int>(rng_.Uniform(options_.num_tables));
    // Row payload: ~columns_per_table columns worth of data.
    std::string row;
    row.reserve(row_bytes);
    for (int c = 0; c < options_.columns_per_table && row.size() < row_bytes;
         ++c) {
      char col[32];
      snprintf(col, sizeof(col), "c%02d=", c);
      row += col;
      rng_.RandomBytes(row_bytes / options_.columns_per_table, &row);
      row.push_back(';');
    }
    row.resize(row_bytes);
    PMBLADE_RETURN_IF_ERROR(engine->Put(RowKey(table, order), row));

    // Secondary index entries (random column values -> random writes).
    for (int i = 0; i < options_.indexes_per_table; ++i) {
      uint64_t column_value = rng_.Uniform(100'000'000);
      char rowid[24];
      snprintf(rowid, sizeof(rowid), "o%010llu",
               static_cast<unsigned long long>(order));
      PMBLADE_RETURN_IF_ERROR(
          engine->Put(IndexKey(table, i, column_value, order), rowid));
    }
  }
  latency->Add(clock_->NowNanos() - start);
  return Status::OK();
}

Status RetailWorkload::UpdateOrder(KvEngine* engine, uint64_t order,
                                   Histogram* latency) {
  const uint64_t start = clock_->NowNanos();
  int table = static_cast<int>(rng_.Uniform(options_.num_tables));
  // Status transition: rewrite the row with a new status column...
  std::string row;
  Status s = engine->Get(RowKey(table, order), &row);
  if (s.IsNotFound()) {
    // Order never touched this table; write a fresh small status row.
    row.clear();
  } else if (!s.ok()) {
    return s;
  }
  char status[48];
  snprintf(status, sizeof(status), "status=%llu;",
           static_cast<unsigned long long>(rng_.Uniform(8)));
  row += status;
  PMBLADE_RETURN_IF_ERROR(engine->Put(RowKey(table, order), row));
  // ...and touch one index (index tables are small but updated randomly —
  // the paper calls out exactly this as a write-amplification source).
  int index = static_cast<int>(rng_.Uniform(options_.indexes_per_table));
  uint64_t column_value = rng_.Uniform(100'000'000);
  char rowid[24];
  snprintf(rowid, sizeof(rowid), "o%010llu",
           static_cast<unsigned long long>(order));
  PMBLADE_RETURN_IF_ERROR(
      engine->Put(IndexKey(table, index, column_value, order), rowid));
  latency->Add(clock_->NowNanos() - start);
  return Status::OK();
}

Status RetailWorkload::IndexQuery(KvEngine* engine, uint64_t order,
                                  Histogram* scan_lat, Histogram* read_lat) {
  int table = static_cast<int>(rng_.Uniform(options_.num_tables));
  int index = static_cast<int>(rng_.Uniform(options_.indexes_per_table));

  // Scan the index table for row ids.
  const uint64_t scan_start = clock_->NowNanos();
  char prefix[16];
  snprintf(prefix, sizeof(prefix), "x%02d_%d|", table, index);
  std::unique_ptr<Iterator> it(engine->NewScanIterator());
  char seek[40];
  snprintf(seek, sizeof(seek), "%sc%08llu", prefix,
           static_cast<unsigned long long>(rng_.Uniform(100'000'000)));
  it->Seek(seek);
  std::string row_id;
  for (int j = 0; j < options_.index_scan_length && it->Valid(); ++j) {
    if (!it->key().starts_with(prefix)) break;
    row_id = it->value().ToString();
    it->Next();
  }
  PMBLADE_RETURN_IF_ERROR(it->status());
  it.reset();
  scan_lat->Add(clock_->NowNanos() - scan_start);

  // Point-read the row the index pointed at (fall back to a known order if
  // the scan ran dry).
  const uint64_t read_start = clock_->NowNanos();
  std::string key;
  if (!row_id.empty()) {
    key = "t";
    char buf[40];
    snprintf(buf, sizeof(buf), "t%02d|%s", table, row_id.c_str());
    key = buf;
  } else {
    key = RowKey(table, order);
  }
  std::string row;
  Status s = engine->Get(key, &row);
  if (!s.ok() && !s.IsNotFound()) return s;
  read_lat->Add(clock_->NowNanos() - read_start);
  return Status::OK();
}

Status RetailWorkload::PointRead(KvEngine* engine, uint64_t order,
                                 Histogram* latency) {
  const uint64_t start = clock_->NowNanos();
  int table = static_cast<int>(rng_.Uniform(options_.num_tables));
  std::string row;
  Status s = engine->Get(RowKey(table, order), &row);
  if (!s.ok() && !s.IsNotFound()) return s;
  latency->Add(clock_->NowNanos() - start);
  return Status::OK();
}

Status RetailWorkload::Load(KvEngine* engine, RetailResult* result) {
  *result = RetailResult{};
  const uint64_t start = clock_->NowNanos();
  for (uint64_t i = 0; i < options_.load_orders; ++i) {
    PMBLADE_RETURN_IF_ERROR(
        InsertOrder(engine, next_order_++, &result->write_latency));
  }
  result->transactions = options_.load_orders;
  result->duration_nanos = clock_->NowNanos() - start;
  return Status::OK();
}

Status RetailWorkload::Run(KvEngine* engine, RetailResult* result) {
  *result = RetailResult{};
  const uint64_t start = clock_->NowNanos();
  for (uint64_t i = 0; i < options_.transactions; ++i) {
    double r = rng_.NextDouble();
    if (r < options_.index_query_fraction) {
      PMBLADE_RETURN_IF_ERROR(IndexQuery(engine, PickRecentOrder(),
                                         &result->scan_latency,
                                         &result->read_latency));
    } else if (r < options_.index_query_fraction + options_.update_fraction) {
      PMBLADE_RETURN_IF_ERROR(
          UpdateOrder(engine, PickRecentOrder(), &result->write_latency));
    } else if (r < options_.index_query_fraction + options_.update_fraction +
                       options_.new_order_fraction) {
      PMBLADE_RETURN_IF_ERROR(
          InsertOrder(engine, next_order_++, &result->write_latency));
    } else {
      PMBLADE_RETURN_IF_ERROR(
          PointRead(engine, PickRecentOrder(), &result->read_latency));
    }
  }
  result->transactions = options_.transactions;
  result->duration_nanos = clock_->NowNanos() - start;
  return Status::OK();
}

std::vector<std::string> RetailWorkload::PartitionBoundaries(
    int partitions) const {
  // Key space: record tables "t00".."t09", then indexes "x00_0".."x09_2".
  // Split proportionally: half the partitions over record tables, half over
  // index tables.
  std::vector<std::string> boundaries;
  int record_parts = partitions / 2;
  for (int i = 1; i <= record_parts; ++i) {
    int table = options_.num_tables * i / (record_parts + 1);
    char buf[16];
    snprintf(buf, sizeof(buf), "t%02d", table);
    boundaries.emplace_back(buf);
  }
  boundaries.emplace_back("x");  // records | indexes divide
  int index_parts = partitions - record_parts - 1;
  for (int i = 1; i <= index_parts; ++i) {
    int table = options_.num_tables * i / (index_parts + 1);
    char buf[16];
    snprintf(buf, sizeof(buf), "x%02d", table);
    boundaries.emplace_back(buf);
  }
  // Deduplicate and keep strictly ascending.
  std::vector<std::string> out;
  for (auto& b : boundaries) {
    if (out.empty() || out.back() < b) out.push_back(b);
  }
  return out;
}

}  // namespace bench
}  // namespace pmblade
