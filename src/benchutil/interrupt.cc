#include "benchutil/interrupt.h"

#include <signal.h>

namespace pmblade {
namespace bench {

namespace {

volatile sig_atomic_t g_signal = 0;
InterruptCallback g_callback = nullptr;

void Handler(int signo) {
  g_signal = signo;
  // Re-raise kills on the second signal (default disposition restored).
  struct sigaction dfl;
  sigemptyset(&dfl.sa_mask);
  dfl.sa_flags = 0;
  dfl.sa_handler = SIG_DFL;
  sigaction(signo, &dfl, nullptr);
  if (g_callback != nullptr) g_callback();
}

}  // namespace

void InstallInterruptHandler(InterruptCallback callback) {
  g_callback = callback;
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls see EINTR
  sa.sa_handler = Handler;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool InterruptRequested() { return g_signal != 0; }

int InterruptSignal() { return static_cast<int>(g_signal); }

}  // namespace bench
}  // namespace pmblade
