// Online-retail workload: a synthetic stand-in for the paper's production
// workload (Section VI-D), reproducing every property the paper states:
//
//   * 10 record tables, ~10 columns each;
//   * 3 secondary-index tables per record table (index on frequently
//     accessed columns);
//   * an order touches several tables and writes ~100 KB in total
//     (sequential inserts + random index updates);
//   * as an order progresses its status is updated repeatedly (hot data);
//   * reads are recency-skewed: index queries obtain row ids via a short
//     scan on an index table, then point-read the row (warm data);
//   * over time orders go cold and are rarely touched.
//
// Keys use the "<table>|<components>" shape the PM table's meta layer
// extracts:
//   record row : "t<T>|o<order>"                    -> row payload
//   index entry: "x<T>_<I>|<column-value>|o<order>" -> row id

#ifndef PMBLADE_BENCHUTIL_RETAIL_WORKLOAD_H_
#define PMBLADE_BENCHUTIL_RETAIL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/kv_engine.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/random.h"

namespace pmblade {
namespace bench {

struct RetailOptions {
  int num_tables = 10;
  int columns_per_table = 10;
  int indexes_per_table = 3;
  /// Bytes an order writes across all tables (paper: ~100 KB; scaled).
  size_t bytes_per_order = 8 * 1024;
  /// Orders created during the load phase.
  uint64_t load_orders = 2000;
  /// Transactions executed during the run phase.
  uint64_t transactions = 5000;
  /// Zipf skew of which recent orders get read/updated.
  double recency_theta = 0.9;
  /// Fraction of transactions that are: index query / status update / new
  /// order (remainder = point read by primary key).
  double index_query_fraction = 0.4;
  double update_fraction = 0.3;
  double new_order_fraction = 0.15;
  int index_scan_length = 20;
  uint64_t seed = 42;
};

struct RetailResult {
  uint64_t transactions = 0;
  uint64_t duration_nanos = 0;
  Histogram read_latency;   // point reads (primary key + post-index)
  Histogram scan_latency;   // index scans
  Histogram write_latency;  // inserts + updates

  double ThroughputTxPerSec() const {
    return duration_nanos == 0
               ? 0.0
               : static_cast<double>(transactions) * 1e9 / duration_nanos;
  }
};

class RetailWorkload {
 public:
  explicit RetailWorkload(const RetailOptions& options);

  /// Inserts `load_orders` complete orders.
  Status Load(KvEngine* engine, RetailResult* result);

  /// Executes `transactions` mixed transactions over the loaded data; new
  /// orders extend the order space.
  Status Run(KvEngine* engine, RetailResult* result);

  /// Boundaries splitting the record/index key space into `partitions`
  /// ranges (for pmblade::DB's partitioned LSM).
  std::vector<std::string> PartitionBoundaries(int partitions) const;

  uint64_t next_order() const { return next_order_; }

 private:
  std::string RowKey(int table, uint64_t order) const;
  std::string IndexKey(int table, int index, uint64_t column_value,
                       uint64_t order) const;

  /// Writes one full order (rows in several tables + index entries).
  Status InsertOrder(KvEngine* engine, uint64_t order, Histogram* latency);
  /// Updates an order's status columns (row rewrite + one index update).
  Status UpdateOrder(KvEngine* engine, uint64_t order, Histogram* latency);
  /// Index scan to find row ids, then point-read one row.
  Status IndexQuery(KvEngine* engine, uint64_t order, Histogram* scan_lat,
                    Histogram* read_lat);
  Status PointRead(KvEngine* engine, uint64_t order, Histogram* latency);

  /// Recency-skewed order pick over [0, next_order_).
  uint64_t PickRecentOrder();

  RetailOptions options_;
  Random rng_;
  uint64_t next_order_ = 0;
  Clock* clock_;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_RETAIL_WORKLOAD_H_
