// YCSB core workloads (Cooper et al., SoCC '10), parameterized as in the
// paper's Fig. 12 evaluation: Load (bulk insert) plus workloads A-F.
//
//   A: 50% read / 50% update, zipfian
//   B: 95% read /  5% update, zipfian
//   C: 100% read,             zipfian
//   D: 95% read /  5% insert, latest
//   E: 95% scan /  5% insert, zipfian (scan length uniform 1..100)
//   F: 50% read / 50% read-modify-write, zipfian

#ifndef PMBLADE_BENCHUTIL_YCSB_H_
#define PMBLADE_BENCHUTIL_YCSB_H_

#include <string>

#include "benchutil/workload.h"
#include "core/kv_engine.h"
#include "util/histogram.h"

namespace pmblade {
namespace bench {

enum class YcsbWorkload { kLoad, kA, kB, kC, kD, kE, kF };

const char* YcsbName(YcsbWorkload workload);

struct YcsbOptions {
  uint64_t record_count = 50000;
  uint64_t operation_count = 50000;
  size_t value_size = 1024;
  double zipf_theta = 0.99;
  int max_scan_length = 100;
  uint64_t seed = 42;
  std::string key_prefix = "user";
};

struct YcsbResult {
  YcsbWorkload workload;
  uint64_t operations = 0;
  uint64_t duration_nanos = 0;
  Histogram read_latency;
  Histogram update_latency;
  Histogram scan_latency;
  Histogram insert_latency;

  double ThroughputOpsPerSec() const {
    return duration_nanos == 0
               ? 0.0
               : static_cast<double>(operations) * 1e9 / duration_nanos;
  }
};

/// Bulk-loads `record_count` records (the YCSB load phase).
Status YcsbLoad(KvEngine* engine, const YcsbOptions& options,
                YcsbResult* result);

/// Runs one workload phase against a loaded engine.
Status YcsbRun(KvEngine* engine, YcsbWorkload workload,
               const YcsbOptions& options, YcsbResult* result);

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_YCSB_H_
