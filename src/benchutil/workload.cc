#include "benchutil/workload.h"

#include <cstdio>

namespace pmblade {
namespace bench {

KeyGenerator::KeyGenerator(const KeySpec& spec)
    : spec_(spec), uniform_(spec.seed) {
  switch (spec_.distribution) {
    case Distribution::kZipfian:
      if (spec_.scramble) {
        scrambled_.reset(new ScrambledZipfianGenerator(
            spec_.num_keys, spec_.zipf_theta, spec_.seed));
      } else {
        zipf_.reset(new ZipfianGenerator(spec_.num_keys, spec_.zipf_theta,
                                         spec_.seed));
      }
      break;
    case Distribution::kLatest:
      latest_.reset(new LatestGenerator(spec_.num_keys, spec_.zipf_theta,
                                        spec_.seed));
      break;
    case Distribution::kUniform:
    case Distribution::kSequential:
      break;
  }
}

uint64_t KeyGenerator::NextIndex() {
  switch (spec_.distribution) {
    case Distribution::kUniform:
      return uniform_.Uniform(spec_.num_keys);
    case Distribution::kZipfian:
      return spec_.scramble ? scrambled_->Next() : zipf_->Next();
    case Distribution::kLatest:
      return latest_->Next();
    case Distribution::kSequential: {
      uint64_t index = sequential_next_;
      sequential_next_ = (sequential_next_ + 1) % spec_.num_keys;
      return index;
    }
  }
  return 0;
}

std::string KeyGenerator::KeyAt(uint64_t index) const {
  char buf[64];
  snprintf(buf, sizeof(buf), "%s%0*llu", spec_.prefix.c_str(), spec_.digits,
           static_cast<unsigned long long>(index));
  return buf;
}

std::string KeyGenerator::Next() { return KeyAt(NextIndex()); }

std::vector<std::string> KeyGenerator::PartitionBoundaries(
    int partitions) const {
  std::vector<std::string> boundaries;
  for (int i = 1; i < partitions; ++i) {
    uint64_t index = spec_.num_keys * static_cast<uint64_t>(i) / partitions;
    boundaries.push_back(KeyAt(index));
  }
  return boundaries;
}

std::string ValueGenerator::For(uint64_t key_index) {
  // Deterministic per key index so re-reads can verify; ~50% compressible.
  static const char* kPhrases[] = {
      "order-status:paid;", "delivery:pending;", "warehouse:shanghai;",
      "rider:unassigned;",  "coupon:applied;",
  };
  std::string value;
  value.reserve(size_);
  Random local(key_index * 2654435761u + 1);
  while (value.size() < size_) {
    value += kPhrases[local.Uniform(5)];
    size_t filler = std::min<size_t>(8, size_ - value.size());
    local.RandomBytes(filler, &value);
  }
  value.resize(size_);
  return value;
}

OpChooser::OpChooser(const OpMix& mix, uint64_t seed)
    : mix_(mix), rng_(seed) {}

OpType OpChooser::Next() {
  double r = rng_.NextDouble();
  if ((r -= mix_.read) < 0) return OpType::kRead;
  if ((r -= mix_.update) < 0) return OpType::kUpdate;
  if ((r -= mix_.insert) < 0) return OpType::kInsert;
  if ((r -= mix_.scan) < 0) return OpType::kScan;
  return OpType::kReadModifyWrite;
}

}  // namespace bench
}  // namespace pmblade
