// Workload generation: keys, values, distributions and operation mixes for
// the benchmark harnesses.

#ifndef PMBLADE_BENCHUTIL_WORKLOAD_H_
#define PMBLADE_BENCHUTIL_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/zipfian.h"

namespace pmblade {
namespace bench {

enum class Distribution { kUniform, kZipfian, kLatest, kSequential };

struct KeySpec {
  std::string prefix = "user";
  int digits = 8;              // zero-padded numeric suffix width
  uint64_t num_keys = 100000;
  Distribution distribution = Distribution::kZipfian;
  double zipf_theta = 0.99;
  /// Scatter hot Zipfian items over the key space (YCSB behaviour).
  bool scramble = true;
  uint64_t seed = 42;
};

/// Draws key indices per the spec and formats them as key strings.
class KeyGenerator {
 public:
  explicit KeyGenerator(const KeySpec& spec);

  /// Next key per the configured distribution.
  std::string Next();
  /// The key string for a specific index (for verification / loading).
  std::string KeyAt(uint64_t index) const;
  uint64_t NextIndex();

  const KeySpec& spec() const { return spec_; }

  /// Interior partition boundaries that split this generator's key space
  /// into `partitions` equal ranges (feeds Options::partition_boundaries).
  std::vector<std::string> PartitionBoundaries(int partitions) const;

 private:
  KeySpec spec_;
  Random uniform_;
  uint64_t sequential_next_ = 0;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::unique_ptr<ScrambledZipfianGenerator> scrambled_;
  std::unique_ptr<LatestGenerator> latest_;
};

/// Deterministic, pseudo-compressible values: a repeated dictionary phrase
/// seeded by the key index plus random filler. `size` bytes exactly.
class ValueGenerator {
 public:
  explicit ValueGenerator(size_t value_size, uint64_t seed = 7)
      : size_(value_size), rng_(seed) {}

  std::string For(uint64_t key_index);
  size_t size() const { return size_; }

 private:
  size_t size_;
  Random rng_;
};

/// Operation mix for a run phase.
struct OpMix {
  double read = 0.0;
  double update = 0.0;
  double insert = 0.0;
  double scan = 0.0;
  double read_modify_write = 0.0;
};

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

/// Samples operations according to an OpMix.
class OpChooser {
 public:
  OpChooser(const OpMix& mix, uint64_t seed);
  OpType Next();

 private:
  OpMix mix_;
  Random rng_;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_WORKLOAD_H_
