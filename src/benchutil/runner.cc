#include "benchutil/runner.h"

namespace pmblade {
namespace bench {

const char* EngineConfigName(EngineConfig config) {
  switch (config) {
    case EngineConfig::kPmBlade: return "PMBlade";
    case EngineConfig::kPmBladePm: return "PMBlade-PM";
    case EngineConfig::kPmBladeSsd: return "PMBlade-SSD";
    case EngineConfig::kPmbP: return "PMB-P";
    case EngineConfig::kPmbPI: return "PMB-PI";
    case EngineConfig::kPmbPIC: return "PMB-PIC";
    case EngineConfig::kRocksStyle: return "RocksDB";
    case EngineConfig::kMatrixKvSmall: return "MatrixKV-8";
    case EngineConfig::kMatrixKvLarge: return "MatrixKV-80";
  }
  return "?";
}

BenchEnv::BenchEnv(const BenchEnvOptions& options) : options_(options) {
  SsdModelOptions mopts;
  mopts.inject_latency = options_.inject_ssd_latency;
  model_.reset(new SsdModel(mopts));
  sim_env_.reset(new SimEnv(PosixEnv(), model_.get()));
  PosixEnv()->RemoveDirRecursively(options_.root);
  PosixEnv()->CreateDir(options_.root);
}

BenchEnv::~BenchEnv() { CloseAndCleanup(); }

void BenchEnv::CloseAndCleanup() {
  db_.reset();
  matrix_.reset();
  leveled_.reset();
  engine_ = nullptr;
  PosixEnv()->RemoveDirRecursively(options_.root);
}

Status BenchEnv::OpenEngine(EngineConfig config, KvEngine** engine) {
  CloseAndCleanup();
  PMBLADE_RETURN_IF_ERROR(PosixEnv()->CreateDir(options_.root));
  config_ = config;
  model_->ResetStats();
  const std::string dbname = options_.root + "/db";

  switch (config) {
    case EngineConfig::kPmBlade:
    case EngineConfig::kPmBladePm:
    case EngineConfig::kPmBladeSsd:
    case EngineConfig::kPmbP:
    case EngineConfig::kPmbPI:
    case EngineConfig::kPmbPIC: {
      Options opts;
      opts.env = sim_env_.get();
      opts.ssd_model = model_.get();
      opts.memtable_bytes = options_.memtable_bytes;
      opts.pm_pool_capacity = options_.pm_pool_capacity;
      opts.pm_latency.inject_latency = options_.inject_pm_latency;
      opts.partition_boundaries = options_.partition_boundaries;
      opts.cost.tau_m = options_.l0_budget_large;
      opts.cost.tau_t = options_.l0_budget_large / 2;
      opts.cost.tau_w = options_.memtable_bytes * 4;
      opts.internal_table_target_bytes = options_.memtable_bytes * 4;
      opts.block_cache_bytes = options_.block_cache_bytes;
      opts.bloom_bits_per_key = options_.bloom_bits_per_key;
      opts.memory_budget_bytes = options_.memory_budget_bytes;
      opts.arbiter_interval_ms = options_.arbiter_interval_ms;
      opts.background_compaction = options_.background_compaction;
      opts.compaction_workers = options_.compaction_workers;
      opts.max_subcompactions = options_.max_subcompactions;
      // Keep the compactor's merge pool at least as wide as the slice
      // fan-out, or the extra slices would just queue behind each other.
      if (options_.max_subcompactions > opts.major.worker_threads) {
        opts.major.worker_threads = options_.max_subcompactions;
      }
      opts.num_shards = options_.num_shards;
      opts.atomic_cross_shard_batches = options_.atomic_cross_shard_batches;
      opts.compaction_policy = options_.compaction_policy;
      opts.compaction_size_ratio = options_.compaction_size_ratio;
      opts.max_ssd_levels = options_.max_ssd_levels;

      switch (config) {
        case EngineConfig::kPmBlade:
          opts.l0_layout = L0Layout::kPmTable;
          opts.enable_internal_compaction = true;
          opts.enable_cost_model = true;
          opts.major.engine = CompactionEngine::kPmBlade;
          break;
        case EngineConfig::kPmBladePm:
          // Large PM level-0 but the conventional compaction policy: whole
          // level-0 moves down at a table-count threshold.
          opts.l0_layout = L0Layout::kPmTable;
          opts.enable_internal_compaction = false;
          opts.enable_cost_model = false;
          opts.l0_table_trigger = 8;
          opts.major.engine = CompactionEngine::kThread;
          break;
        case EngineConfig::kPmBladeSsd:
          opts.l0_layout = L0Layout::kSstable;
          opts.enable_internal_compaction = false;
          opts.enable_cost_model = false;
          opts.l0_table_trigger = 4;
          opts.major.engine = CompactionEngine::kThread;
          break;
        case EngineConfig::kPmbP:
          opts.l0_layout = L0Layout::kArrayTable;
          opts.enable_internal_compaction = false;
          opts.enable_cost_model = false;
          opts.l0_table_trigger = 8;
          opts.major.engine = CompactionEngine::kThread;
          break;
        case EngineConfig::kPmbPI:
          opts.l0_layout = L0Layout::kArrayTable;
          opts.enable_internal_compaction = true;
          opts.enable_cost_model = true;
          opts.major.engine = CompactionEngine::kThread;
          break;
        case EngineConfig::kPmbPIC:
          opts.l0_layout = L0Layout::kPmTable;
          opts.enable_internal_compaction = true;
          opts.enable_cost_model = true;
          opts.major.engine = CompactionEngine::kThread;
          break;
        default:
          break;
      }
      PMBLADE_RETURN_IF_ERROR(DB::Open(opts, dbname, &db_));
      engine_ = db_.get();
      break;
    }

    case EngineConfig::kRocksStyle: {
      LeveledDbOptions opts;
      opts.env = sim_env_.get();
      opts.memtable_bytes = options_.memtable_bytes;
      opts.l0_compaction_trigger = 4;
      opts.levels.level1_target_bytes = options_.memtable_bytes * 4;
      opts.levels.target_file_bytes = options_.memtable_bytes;
      opts.block_cache_bytes = options_.block_cache_bytes;
      PMBLADE_RETURN_IF_ERROR(LeveledDb::Open(opts, dbname, &leveled_));
      engine_ = leveled_.get();
      break;
    }

    case EngineConfig::kMatrixKvSmall:
    case EngineConfig::kMatrixKvLarge: {
      MatrixKvOptions opts;
      opts.env = sim_env_.get();
      opts.memtable_bytes = options_.memtable_bytes;
      opts.pm_budget_bytes = config == EngineConfig::kMatrixKvSmall
                                 ? options_.l0_budget_small
                                 : options_.l0_budget_large;
      opts.pm_pool_capacity = options_.pm_pool_capacity;
      opts.pm_latency.inject_latency = options_.inject_pm_latency;
      opts.levels.level1_target_bytes = options_.memtable_bytes * 4;
      opts.levels.target_file_bytes = options_.memtable_bytes;
      opts.block_cache_bytes = options_.block_cache_bytes;
      PMBLADE_RETURN_IF_ERROR(MatrixKvDb::Open(opts, dbname, &matrix_));
      engine_ = matrix_.get();
      break;
    }
  }
  *engine = engine_;
  return Status::OK();
}

uint64_t BenchEnv::PmBytesWritten() const {
  if (db_ != nullptr) {
    uint64_t v = 0;
    return db_->GetProperty("pmblade.pm-bytes-written", &v) ? v : 0;
  }
  if (matrix_ != nullptr) {
    return matrix_->pm_pool()->stats().bytes_written();
  }
  return 0;
}

uint64_t BenchEnv::UserBytesWritten() const {
  const DbStatistics* stats = statistics();
  return stats != nullptr ? stats->user_bytes_written() : 0;
}

double BenchEnv::PmHitRatio() const {
  const DbStatistics* stats = statistics();
  return stats != nullptr ? stats->PmHitRatio() : 0.0;
}

const DbStatistics* BenchEnv::statistics() const {
  if (db_ != nullptr) return &db_->statistics();
  if (matrix_ != nullptr) return &matrix_->statistics();
  if (leveled_ != nullptr) return &leveled_->statistics();
  return nullptr;
}

Status BenchEnv::FlushEngine() {
  return engine_ != nullptr ? engine_->Flush() : Status::OK();
}

}  // namespace bench
}  // namespace pmblade
