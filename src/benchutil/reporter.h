// Table/series reporters: the bench binaries print paper-style tables with
// aligned columns to stdout.

#ifndef PMBLADE_BENCHUTIL_REPORTER_H_
#define PMBLADE_BENCHUTIL_REPORTER_H_

#include <string>
#include <vector>

namespace pmblade {
namespace bench {

/// Accumulates rows and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Formats a double with `precision` decimals.
  static std::string Fmt(double value, int precision = 2);
  static std::string FmtBytes(uint64_t bytes);
  static std::string FmtNanos(double nanos);

  /// Prints "== title ==", the header, a rule, and the rows.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bench
}  // namespace pmblade

#endif  // PMBLADE_BENCHUTIL_REPORTER_H_
