// Manifest: the durable metadata snapshot of the DB. Because table counts
// are modest, pmblade rewrites a full snapshot on every metadata change and
// installs it with an atomic rename (MANIFEST.tmp -> MANIFEST), rather than
// maintaining an append-only edit log. Contents:
//
//   * format version, next file number, last sequence hint, WAL number
//   * every partition: [begin, end) keys, the PM-pool object ids of its
//     unsorted tables (newest first) and sorted run, and its SSD run stack
//     (newest first; each run a level tag + SSTable file numbers)
//
// Recovery: load the manifest, reopen PM tables by pool object id, reopen
// SSD SSTables by file number, garbage-collect unreferenced pool
// objects and orphan .sst files, then replay the WAL.

#ifndef PMBLADE_CORE_MANIFEST_H_
#define PMBLADE_CORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "util/status.h"

namespace pmblade {

/// One sorted run of SSD SSTables. `level` is the compaction-policy level
/// tag (>= 1; level 0 is the PM side). Leveled data is always a single
/// level-1 run; tiered / lazy-leveling policies stack several runs.
struct ManifestSsdRun {
  uint32_t level = 1;
  std::vector<uint64_t> file_numbers;  // ascending key order
};

struct ManifestPartition {
  uint64_t id = 0;
  std::string begin_key;
  std::string end_key;
  std::vector<uint64_t> unsorted_pm_ids;  // newest first
  std::vector<uint64_t> sorted_pm_ids;    // ascending key order
  /// Unsorted level-0 SSTable file numbers (PMBlade-SSD layout only).
  std::vector<uint64_t> unsorted_file_numbers;
  std::vector<uint64_t> sorted_file_numbers;
  /// SSD runs, newest first, level tags non-decreasing with depth.
  /// Format v1/v2 manifests (a single `l1_file_numbers` list) load as one
  /// level-1 run.
  std::vector<ManifestSsdRun> ssd_runs;
};

struct ManifestState {
  uint64_t next_file_number = 1;
  uint64_t last_sequence = 0;
  uint64_t wal_number = 0;
  /// Ceiling of the sequences durably flushed to level-0. Strictly below
  /// last_sequence whenever the memtable holds acknowledged writes; WAL
  /// replay uses it (not last_sequence, which is persisted before any flush
  /// of the covered data) to decide whether a carried txn commit fence must
  /// re-apply its payload.
  uint64_t flushed_sequence = 0;
  std::vector<ManifestPartition> partitions;
};

/// Serializes `state` and atomically installs it as <dbname>/MANIFEST.
Status WriteManifest(Env* env, const std::string& dbname,
                     const ManifestState& state);

/// Loads <dbname>/MANIFEST; NotFound if the DB has never committed one.
Status ReadManifest(Env* env, const std::string& dbname,
                    ManifestState* state);

}  // namespace pmblade

#endif  // PMBLADE_CORE_MANIFEST_H_
