#include "core/manifest.h"

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/slice.h"
#include "util/sync_point.h"

namespace pmblade {

namespace {
constexpr uint32_t kManifestMagic = 0x504d424du;  // "PMBM"
// Version 2 added flushed_sequence; version-1 manifests are still readable
// (their flushed_sequence defaults to last_sequence, the pre-2 behavior).
// Version 3 replaced the per-partition l1_file_numbers list with a stack of
// level-tagged SSD runs; v1/v2 manifests load their l1 list as one level-1
// run (exactly what the leveled policy maintains).
constexpr uint32_t kFormatVersion = 3;

void PutIdVector(std::string* dst, const std::vector<uint64_t>& ids) {
  PutVarint32(dst, static_cast<uint32_t>(ids.size()));
  for (uint64_t id : ids) PutVarint64(dst, id);
}

bool GetIdVector(Slice* in, std::vector<uint64_t>* ids) {
  uint32_t n = 0;
  if (!GetVarint32(in, &n)) return false;
  ids->clear();
  ids->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!GetVarint64(in, &id)) return false;
    ids->push_back(id);
  }
  return true;
}
}  // namespace

Status WriteManifest(Env* env, const std::string& dbname,
                     const ManifestState& state) {
  std::string body;
  PutFixed32(&body, kManifestMagic);
  PutFixed32(&body, kFormatVersion);
  PutVarint64(&body, state.next_file_number);
  PutVarint64(&body, state.last_sequence);
  PutVarint64(&body, state.wal_number);
  PutVarint64(&body, state.flushed_sequence);
  PutVarint32(&body, static_cast<uint32_t>(state.partitions.size()));
  for (const auto& p : state.partitions) {
    PutVarint64(&body, p.id);
    PutLengthPrefixedSlice(&body, p.begin_key);
    PutLengthPrefixedSlice(&body, p.end_key);
    PutIdVector(&body, p.unsorted_pm_ids);
    PutIdVector(&body, p.sorted_pm_ids);
    PutIdVector(&body, p.unsorted_file_numbers);
    PutIdVector(&body, p.sorted_file_numbers);
    PutVarint32(&body, static_cast<uint32_t>(p.ssd_runs.size()));
    for (const auto& run : p.ssd_runs) {
      PutVarint32(&body, run.level);
      PutIdVector(&body, run.file_numbers);
    }
  }
  PutFixed32(&body, crc32c::Value(body.data(), body.size()));

  const std::string tmp = dbname + "/MANIFEST.tmp";
  const std::string final_name = dbname + "/MANIFEST";
  PMBLADE_RETURN_IF_ERROR(WriteStringToFile(env, body, tmp));
  PMBLADE_SYNC_POINT("WriteManifest:AfterTmpWrite");
  PMBLADE_RETURN_IF_ERROR(env->RenameFile(tmp, final_name));
  PMBLADE_SYNC_POINT("WriteManifest:AfterRename");
  return Status::OK();
}

Status ReadManifest(Env* env, const std::string& dbname,
                    ManifestState* state) {
  std::string body;
  PMBLADE_RETURN_IF_ERROR(
      ReadFileToString(env, dbname + "/MANIFEST", &body));
  if (body.size() < 12) return Status::Corruption("manifest too short");

  uint32_t stored_crc = DecodeFixed32(body.data() + body.size() - 4);
  if (crc32c::Value(body.data(), body.size() - 4) != stored_crc) {
    return Status::Corruption("manifest crc mismatch");
  }

  Slice in(body.data(), body.size() - 4);
  if (in.size() < 8 || DecodeFixed32(in.data()) != kManifestMagic) {
    return Status::Corruption("manifest bad magic");
  }
  uint32_t version = DecodeFixed32(in.data() + 4);
  if (version < 1 || version > kFormatVersion) {
    return Status::NotSupported("manifest format version unsupported");
  }
  in.remove_prefix(8);

  *state = ManifestState{};
  uint32_t num_partitions = 0;
  if (!GetVarint64(&in, &state->next_file_number) ||
      !GetVarint64(&in, &state->last_sequence) ||
      !GetVarint64(&in, &state->wal_number)) {
    return Status::Corruption("manifest truncated header");
  }
  if (version >= 2) {
    if (!GetVarint64(&in, &state->flushed_sequence)) {
      return Status::Corruption("manifest truncated header");
    }
  } else {
    // Pre-2 manifests carried no flush watermark; last_sequence is the
    // conservative stand-in they were written against.
    state->flushed_sequence = state->last_sequence;
  }
  if (!GetVarint32(&in, &num_partitions)) {
    return Status::Corruption("manifest truncated header");
  }
  state->partitions.resize(num_partitions);
  for (auto& p : state->partitions) {
    Slice begin_key, end_key;
    if (!GetVarint64(&in, &p.id) ||
        !GetLengthPrefixedSlice(&in, &begin_key) ||
        !GetLengthPrefixedSlice(&in, &end_key) ||
        !GetIdVector(&in, &p.unsorted_pm_ids) ||
        !GetIdVector(&in, &p.sorted_pm_ids) ||
        !GetIdVector(&in, &p.unsorted_file_numbers) ||
        !GetIdVector(&in, &p.sorted_file_numbers)) {
      return Status::Corruption("manifest truncated partition");
    }
    if (version >= 3) {
      uint32_t num_runs = 0;
      if (!GetVarint32(&in, &num_runs)) {
        return Status::Corruption("manifest truncated partition");
      }
      p.ssd_runs.resize(num_runs);
      for (auto& run : p.ssd_runs) {
        if (!GetVarint32(&in, &run.level) ||
            !GetIdVector(&in, &run.file_numbers)) {
          return Status::Corruption("manifest truncated partition");
        }
      }
    } else {
      // Pre-3 manifests carried a single level-1 run.
      std::vector<uint64_t> l1_file_numbers;
      if (!GetIdVector(&in, &l1_file_numbers)) {
        return Status::Corruption("manifest truncated partition");
      }
      if (!l1_file_numbers.empty()) {
        ManifestSsdRun run;
        run.level = 1;
        run.file_numbers = std::move(l1_file_numbers);
        p.ssd_runs.push_back(std::move(run));
      }
    }
    p.begin_key = begin_key.ToString();
    p.end_key = end_key.ToString();
  }
  return Status::OK();
}

}  // namespace pmblade
