// KvEngine: the minimal engine-agnostic facade the benchmark harness drives,
// implemented by pmblade::DB and by the comparison engines (the conventional
// leveled LSM and the MatrixKV-style store).

#ifndef PMBLADE_CORE_KV_ENGINE_H_
#define PMBLADE_CORE_KV_ENGINE_H_

#include <string>

#include "util/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

class KvEngine {
 public:
  virtual ~KvEngine() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;

  /// Iterator over live (user key, value) pairs, ascending.
  virtual Iterator* NewScanIterator() = 0;

  /// Forces all buffered writes down to the storage layers (memtable flush).
  virtual Status Flush() = 0;

  virtual std::string Name() const = 0;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_KV_ENGINE_H_
