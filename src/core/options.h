// Options for opening a pmblade::DB, plus per-operation read/write options.

#ifndef PMBLADE_CORE_OPTIONS_H_
#define PMBLADE_CORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "compaction/major_compaction.h"
#include "compaction/minor_compaction.h"
#include "env/env.h"
#include "env/ssd_model.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table.h"
#include "util/logging.h"

namespace pmblade {

class BlockCache;

struct Options {
  // ---- environments / devices ----
  /// Filesystem the engine reads/writes SSTables, WAL and manifest through.
  /// Pass a SimEnv to get SSD timing; defaults to PosixEnv().
  Env* env = nullptr;
  /// Unsimulated filesystem used by the major-compaction engines (their I/O
  /// timing is charged explicitly through `ssd_model`). Defaults to
  /// PosixEnv().
  Env* raw_env = nullptr;
  /// SSD timing/accounting model shared with `env`'s SimEnv, used by major
  /// compaction and the coroutine I/O gate. May be nullptr (a private,
  /// injection-free model is created).
  SsdModel* ssd_model = nullptr;

  // ---- persistent memory (level-0) ----
  /// Path of the PM pool file; empty = "<dbname>/pool.pm".
  std::string pm_pool_path;
  uint64_t pm_pool_capacity = 256ull << 20;
  PmLatencyOptions pm_latency;
  /// Physical layout of level-0 tables (PMB-P/PMB-PI use kArrayTable;
  /// PMBlade-SSD uses kSstable).
  L0Layout l0_layout = L0Layout::kPmTable;
  PmTableOptions pm_table;
  /// Open the PM pool in crash-simulation mode (see PmPoolOptions::crash_sim):
  /// stores reach the durable image only through Persist(), and
  /// PmPool::SimulateCrash() models a power cut at 8-byte persist
  /// granularity. Test-only.
  bool pm_crash_sim = false;

  // ---- write path ----
  size_t memtable_bytes = 4 << 20;
  /// Sync the WAL on every write (same effect as WriteOptions::sync on each
  /// write). Group-commit durability semantics: writers are committed in
  /// leader-coalesced groups, and a group containing ANY synced write (this
  /// flag or WriteOptions::sync) performs a single fsync covering the whole
  /// group — unsynced writes that ride in a synced group therefore get
  /// durability for free, and N concurrent synced writers cost far fewer
  /// than N fsyncs.
  bool sync_wal = false;
  /// Upper bound on one group-commit batch (the leader stops coalescing
  /// follower batches past this many WAL bytes). Small writes are capped
  /// tighter (128 KiB + own size) so a tiny write is never stuck behind a
  /// megabyte of followers.
  size_t write_group_max_bytes = 1 << 20;
  /// Backpressure (slowdown-then-stop). When a background flush is still
  /// running and the active memtable has filled past
  /// `write_slowdown_watermark * memtable_bytes`, each write is delayed
  /// once by `write_slowdown_nanos`; when the memtable is FULL and the
  /// flush has not finished, writers hard-stall until it does.
  double write_slowdown_watermark = 0.875;
  uint64_t write_slowdown_nanos = 1000000;  // 1 ms

  // ---- partitioning ----
  /// Interior user-key boundaries splitting the keyspace into
  /// boundaries.size()+1 range partitions. Empty = single partition.
  std::vector<std::string> partition_boundaries;

  // ---- sharding ----
  /// Number of independent engine shards. 1 (the default) opens the classic
  /// single DBImpl — zero behavioral change. N > 1 makes DB::Open return a
  /// ShardedDB: N DBImpls (each with its own directory under <dbname>,
  /// memtable, WAL + group-commit leader, level-0, flush thread and
  /// compaction scheduler) routed by hash(user key) % N. Per-shard options
  /// (memtable_bytes, pm_pool_capacity, the cost budgets) apply to EACH
  /// shard; block_cache_bytes and memory_budget_bytes stay process-wide
  /// (one shared cache, one arbiter over every shard's quotas).
  uint32_t num_shards = 1;
  /// Cross-shard batch atomicity (num_shards > 1 only). true (default): a
  /// WriteBatch spanning several shards commits through a two-phase
  /// protocol woven into the per-shard WALs — parallel prepare wave (one
  /// fsync per shard, concurrently), then commit markers — and recovery
  /// resolves in-doubt transactions so reopen is always all-or-nothing.
  /// false: the legacy behavior — sub-batches commit independently (still
  /// fanned out in parallel) and a crash between shard commits can leave a
  /// batch half-applied. Single-shard batches always take the marker-free
  /// fast path regardless of this flag.
  bool atomic_cross_shard_batches = true;
  /// Internal (set by ShardedDB): a process-wide block cache this engine
  /// must use instead of creating its own from block_cache_bytes. Not
  /// owned; must outlive the DB.
  BlockCache* shared_block_cache = nullptr;

  // ---- compaction policy ----
  /// SSD compaction shape: "leveled" (the paper's single level-1 run per
  /// partition; the default, behavior-identical to the pre-picker engine),
  /// "tiered" (size-ratio run stacking, whole-run merges, no intra-level
  /// rewrites — lower write amplification, more runs to read), or
  /// "lazy_leveling" (tiered upper levels over a single-run last level).
  /// Any other name is InvalidArgument at Open. The policy is NOT persisted:
  /// every run stack in the manifest is self-describing (level-tagged
  /// runs), each picker accepts any stack the others built and converges it
  /// to its own invariant, so switching the policy across reopens is safe.
  /// Non-leveled policies require enable_cost_model (the conventional
  /// PMBlade-PM trigger path is leveled-only).
  std::string compaction_policy = "leveled";
  /// T for tiered / lazy_leveling: runs that may stack on one SSD level
  /// before the block merges one level down. Ignored by leveled.
  uint32_t compaction_size_ratio = 4;
  /// Deepest SSD level for tiered / lazy_leveling (>= 1). Ignored by
  /// leveled.
  uint32_t max_ssd_levels = 3;
  /// Master switch for internal compaction (PMB-P turns it off).
  bool enable_internal_compaction = true;
  /// Use the cost models (Eqs. 1-3). When false, fall back to the
  /// conventional policy: internal compaction never runs on cost grounds and
  /// a major compaction of the WHOLE level-0 triggers when any partition
  /// accumulates `l0_table_trigger` tables (the PMBlade-PM configuration).
  bool enable_cost_model = true;
  uint32_t l0_table_trigger = 8;
  CostModelParams cost;
  /// Adapt τ_t to the traffic mix (Section IV-C): when reads dominate, PM
  /// fills slowly and more of it can be spent on retention. τ_t scales up
  /// to `tau_t_max_factor` as the read share goes from 1/2 to 1.
  bool adaptive_tau_t = false;
  double tau_t_max_factor = 2.0;
  /// Internal compaction output table target size.
  uint64_t internal_table_target_bytes = 4ull << 20;
  MajorCompactionOptions major;

  // ---- compaction scheduling ----
  /// Run Algorithm-1 (internal + major compaction) asynchronously on the
  /// dedicated compaction scheduler thread. The flush thread then only
  /// enqueues a check and returns, so writers stalled on a full memtable
  /// resume as soon as the flush commits instead of sleeping through the
  /// whole compaction. When false, the flush thread blocks until the
  /// scheduled compaction work has drained (the historical behaviour,
  /// writers stall for the compaction's duration) — kept for A/B
  /// benchmarking (`benchmark_kv --compaction_stall`). Compaction always
  /// EXECUTES on the scheduler thread in both modes, preserving the
  /// single-compactor invariant.
  bool background_compaction = true;
  /// Consecutive failed background compaction checks are retried up to this
  /// many times (logged + counted, never poisoning the DB's sticky
  /// background error) before the scheduler parks until the next flush
  /// triggers a fresh check.
  int compaction_retry_limit = 2;
  /// Size of the compaction scheduler's worker pool. 1 (the default) keeps
  /// the historical single-worker pipeline. With N > 1, independent
  /// Algorithm-1 checks run concurrently: each check CLAIMS the dirty
  /// partitions no other worker holds, so two workers never compact the
  /// same partition, while install + manifest commits stay serialized under
  /// the DB mutex. Manual compactions still run exclusively (no concurrent
  /// background job).
  int compaction_workers = 1;
  /// Upper bound on key-range subcompactions per major-compaction victim:
  /// a victim whose level-1 run (or sorted run) spans multiple tables is
  /// split at table boundaries into up to this many disjoint key-range
  /// slices, merged as independent subtasks and stitched back — in slice
  /// order — into one level-1 run under the same atomic manifest commit.
  /// 1 (the default) keeps the historical one-slice-per-victim shape.
  int max_subcompactions = 1;

  // ---- SSTables / read path ----
  size_t block_size = 4096;
  /// Bloom bits per key for SSTable filter blocks AND the DRAM whole-table
  /// filters built over PM level-0 tables. <= 0 disables all filters (the
  /// no-filter baseline for benchmarking).
  int bloom_bits_per_key = 10;
  /// SST block cache capacity. 0 disables the cache entirely.
  size_t block_cache_bytes = 8 << 20;

  // ---- memory arbitration ----
  /// One DRAM budget the MemoryArbiter re-divides at runtime between the
  /// memtable quota, the SST block cache and the Eq. 3 keep-set target
  /// (τ_t). 0 disables the arbiter: memtable_bytes / block_cache_bytes /
  /// cost.tau_t stay fixed at their configured values. When set, those
  /// three values seed the initial split and the remainder (if any) goes
  /// to the keep-set.
  uint64_t memory_budget_bytes = 0;
  /// Period of the arbiter's feedback tick.
  uint64_t arbiter_interval_ms = 250;

  // ---- observability ----
  /// Capacity of the built-in trace ring (the last N engine events kept for
  /// "pmblade.trace.json" and the stats exporters). 0 disables tracing
  /// entirely — no listener subscribes, so event emission sites reduce to
  /// one relaxed atomic load.
  size_t trace_ring_capacity = 256;

  // ---- misc ----
  Logger* logger = nullptr;  // defaults to NullLogger()
  Clock* clock = nullptr;    // defaults to SystemClock()
  /// Create the DB if missing; error if it exists and this is false... both
  /// default to the forgiving behaviour.
  bool create_if_missing = true;
  bool error_if_exists = false;

  /// Fills unset pointers with defaults; validates invariants.
  Status Sanitize();
};

struct ReadOptions {
  /// 0 = read at the latest sequence; otherwise a snapshot sequence obtained
  /// from DB::GetSnapshot().
  uint64_t snapshot = 0;
  bool verify_checksums = true;
};

struct WriteOptions {
  /// Sync the WAL before acknowledging (overrides Options::sync_wal when
  /// true). Under group commit the fsync is amortized: the commit group this
  /// write lands in syncs once, covering every member (see
  /// Options::sync_wal for the full semantics).
  bool sync = false;
};

/// Instantaneous state of the write path's backpressure machinery (the
/// slowdown-then-stop ladder documented at Options::write_slowdown_watermark),
/// cheap enough to poll per request. Admission controllers — the RESP
/// server's in particular — use it to shed or delay work BEFORE a request
/// ties up a thread sleeping inside DB::Write.
enum class WritePressure {
  kNone = 0,      // writes proceed at full speed
  kSlowdown = 1,  // flush is behind; each write eats a one-off delay
  kStall = 2,     // both memtables full (or the engine's background error
                  // is set); writers block until the flush drains
};

const char* WritePressureName(WritePressure pressure);

}  // namespace pmblade

#endif  // PMBLADE_CORE_OPTIONS_H_
