// ShardedDB: a shard-per-core engine behind the pmblade::DB interface.
//
// N independent DBImpl shards — each with its own directory under <dbname>,
// memtable, WAL + group-commit leader, PM level-0, flush thread and
// compaction scheduler — routed by hash(user key) % N. The point of the
// design is that the hot single-shard serialization points (the writer
// queue's leader, the single flush thread, the compaction scheduler, the DB
// mutex) stop being process-wide: a write stalls only when ITS shard's flush
// is behind, and N leaders fsync N WALs concurrently.
//
// Semantics vs the single-shard engine:
//   * Point ops (Get/Put/Delete) are identical — one shard serves each key.
//   * WriteBatch (MSET/mixed batches): the batch is split into per-shard
//     sub-batches; each sub-batch commits atomically WITHIN its shard, but
//     there is no cross-shard atomicity — a reader may observe shard A's
//     half of a batch before shard B's. Crash recovery replays every
//     shard's WAL, so a batch can also surface partially after a crash.
//   * Iterators/SCAN: an N-way merge of per-shard user-key iterators.
//     Hash routing makes shard keyspaces disjoint, so a bytewise merge of
//     the per-shard sorted views IS the global sorted view. Without an
//     explicit snapshot the view is per-shard-consistent, not
//     point-in-time across shards (same caveat as MGET fan-out).
//   * Snapshots: GetSnapshot() captures one sequence per shard and returns
//     an opaque handle; reads/iterators translate the handle back to the
//     per-shard sequences, giving a consistent view within every shard.
//   * Backpressure: GetWritePressure() is the max across shards (the
//     box-level view); GetWritePressure(key) is the routed shard's, which
//     is what the RESP server's admission control uses so one stalled
//     shard never sheds traffic bound for idle shards.
//
// Process-wide resources: one BlockCache (Options::block_cache_bytes) is
// shared by every shard, and one MemoryBudget/MemoryArbiter
// (Options::memory_budget_bytes) re-divides DRAM between the combined
// memtable quota, the shared cache and the combined Eq. 3 keep-set — the
// per-component targets are split evenly across shards on apply.
//
// The shard count is pinned in a <dbname>/SHARDS marker at creation;
// reopening with a different num_shards fails loudly instead of silently
// mis-routing keys.

#ifndef PMBLADE_CORE_SHARDED_DB_H_
#define PMBLADE_CORE_SHARDED_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/db_impl.h"
#include "mem/arbiter.h"
#include "mem/memory_budget.h"
#include "obs/metrics.h"
#include "sstable/block_cache.h"

namespace pmblade {

class ShardedDB final : public DB {
 public:
  ShardedDB(const Options& options, const std::string& dbname);
  ~ShardedDB() override;

  /// Used by DB::Open (options.num_shards > 1).
  Status Init();

  // ---- routing (static so DestroyDB and tests can reuse them) ----
  /// FNV-1a over the user key, mod num_shards.
  static uint32_t ShardOfKey(const Slice& key, uint32_t num_shards);
  /// The per-shard PM pool path when Options::pm_pool_path is explicit
  /// ("<path>.shard-<i>"); shards with an empty path default to
  /// "<shard dir>/pool.pm" as usual.
  static std::string ShardPmPoolPath(const std::string& base, uint32_t shard);
  /// "<dbname>/shard-<i>".
  static std::string ShardDirName(const std::string& dbname, uint32_t shard);

  // ---- DB interface ----
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  uint64_t GetSnapshot() override;
  void ReleaseSnapshot(uint64_t snapshot) override;
  Status FlushMemTable() override;
  Status CompactLevel0() override;
  Status CompactToLevel1(bool respect_cost_model) override;
  const DbStatistics& statistics() const override;
  DbStatistics& statistics() override;
  bool GetProperty(const std::string& property, uint64_t* value) override;
  bool GetProperty(const std::string& property, std::string* value) override;
  WritePressure GetWritePressure() override;
  uint32_t num_shards() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  WritePressure GetWritePressure(const Slice& key) override;
  WritePressure GetShardWritePressure(uint32_t shard) override;
  obs::MetricsRegistry* metrics_registry() override { return &metrics_; }

  /// Direct shard access for tests/benches.
  DBImpl* shard(uint32_t index) { return shards_[index].get(); }

 private:
  uint32_t Route(const Slice& key) const {
    return ShardOfKey(key, static_cast<uint32_t>(shards_.size()));
  }

  /// Reads or creates the <dbname>/SHARDS marker; fails on a mismatch.
  Status CheckOrPinShardCount();
  Status SetUpSharedArbiter();
  void RegisterAggregatedMetrics();

  /// Translates a facade snapshot handle into per-shard ReadOptions for
  /// shard `shard`. Unknown handles return NotFound.
  Status TranslateSnapshot(uint64_t handle, uint32_t shard,
                           uint64_t* shard_snapshot) const;

  /// Re-derives agg_stats_ from the live shards (Reset + AddFrom each).
  void RefreshAggregateStats() const;

  Options options_;
  std::string dbname_;
  Env* env_ = nullptr;

  /// The process-wide block cache every shard reads through (nullptr when
  /// block_cache_bytes == 0). Destroyed after the shards.
  std::unique_ptr<BlockCache> shared_cache_;
  std::vector<std::unique_ptr<DBImpl>> shards_;

  // Shared memory arbitration (memory_budget_bytes > 0): one budget over
  // the combined memtable quota, the shared cache and the combined τ_t.
  std::unique_ptr<mem::MemoryBudget> mem_budget_;
  std::unique_ptr<mem::MemoryArbiter> arbiter_;

  // Snapshot handles: facade handle -> one sequence per shard.
  mutable std::mutex snap_mu_;
  uint64_t next_snapshot_handle_ = 1;
  std::map<uint64_t, std::vector<uint64_t>> snapshots_;

  // Cross-shard aggregate statistics, refreshed on demand by statistics().
  // The returned reference stays valid but its values only update on the
  // next statistics() call — snapshot-style, good enough for the benches
  // and examples that read it.
  mutable std::mutex stats_mu_;
  mutable DbStatistics agg_stats_;

  /// Facade registry: the server's counters, the shared arbiter's
  /// pmblade.mem.* metrics, plus a snapshot provider that splices in every
  /// shard's registry (summed aggregates + pmblade.shard.<i>.* breakdown).
  obs::MetricsRegistry metrics_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_SHARDED_DB_H_
