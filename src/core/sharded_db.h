// ShardedDB: a shard-per-core engine behind the pmblade::DB interface.
//
// N independent DBImpl shards — each with its own directory under <dbname>,
// memtable, WAL + group-commit leader, PM level-0, flush thread and
// compaction scheduler — routed by hash(user key) % N. The point of the
// design is that the hot single-shard serialization points (the writer
// queue's leader, the single flush thread, the compaction scheduler, the DB
// mutex) stop being process-wide: a write stalls only when ITS shard's flush
// is behind, and N leaders fsync N WALs concurrently.
//
// Semantics vs the single-shard engine:
//   * Point ops (Get/Put/Delete) are identical — one shard serves each key.
//   * WriteBatch (MSET/mixed batches): the batch is split into per-shard
//     sub-batches. A batch that lands on ONE shard commits through that
//     shard's normal group-commit path (the marker-free fast path: no 2PC
//     records, identical to num_shards=1). A batch spanning several shards
//     commits through a two-phase protocol woven into the per-shard WALs:
//       phase 1  every participant appends + fsyncs a kPrepare record
//                (global txn id + its sub-batch) — all shards in PARALLEL,
//                so the batch pays max(shard fsync), not the sum;
//       phase 2  every participant appends a tiny kCommit marker, assigns
//                sequences and publishes (fsynced only for sync writes).
//     Crash recovery buffers replayed prepares instead of applying them;
//     the facade then resolves every in-doubt txn across the shard WALs
//     (commit evidence anywhere, or all prepares durable => COMMIT;
//     a rollback marker or any missing prepare => ROLL BACK), so reopen is
//     always all-or-nothing — a cross-shard batch can never surface
//     half-applied after a crash. Because prepares are always fsynced, an
//     acknowledged cross-shard batch survives a power cut even without
//     WriteOptions::sync (upgraded durability); the flip side is that an
//     in-flight batch the client never saw acknowledged may be resolved
//     COMMITTED at reopen (the standard 2PC indeterminate window).
//     Note the guarantee is crash atomicity, not isolation: a concurrent
//     reader (or snapshot) can still observe shard A's half briefly before
//     shard B publishes. Options::atomic_cross_shard_batches=false restores
//     the legacy independent commits (still fanned out in parallel).
//   * Iterators/SCAN: an N-way merge of per-shard user-key iterators.
//     Hash routing makes shard keyspaces disjoint, so a bytewise merge of
//     the per-shard sorted views IS the global sorted view. Without an
//     explicit snapshot the view is per-shard-consistent, not
//     point-in-time across shards (same caveat as MGET fan-out).
//   * Snapshots: GetSnapshot() captures one sequence per shard and returns
//     an opaque handle; reads/iterators translate the handle back to the
//     per-shard sequences, giving a consistent view within every shard.
//   * Backpressure: GetWritePressure() is the max across shards (the
//     box-level view); GetWritePressure(key) is the routed shard's, which
//     is what the RESP server's admission control uses so one stalled
//     shard never sheds traffic bound for idle shards.
//
// Process-wide resources: one BlockCache (Options::block_cache_bytes) is
// shared by every shard, and one MemoryBudget/MemoryArbiter
// (Options::memory_budget_bytes) re-divides DRAM between the combined
// memtable quota, the shared cache and the combined Eq. 3 keep-set — the
// per-component targets are split evenly across shards on apply.
//
// The shard count is pinned in a <dbname>/SHARDS marker at creation;
// reopening with a different num_shards fails loudly instead of silently
// mis-routing keys.

#ifndef PMBLADE_CORE_SHARDED_DB_H_
#define PMBLADE_CORE_SHARDED_DB_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/db_impl.h"
#include "mem/arbiter.h"
#include "mem/memory_budget.h"
#include "obs/metrics.h"
#include "sstable/block_cache.h"
#include "util/thread_pool.h"

namespace pmblade {

class ShardedDB final : public DB {
 public:
  ShardedDB(const Options& options, const std::string& dbname);
  ~ShardedDB() override;

  /// Used by DB::Open (options.num_shards > 1).
  Status Init();

  // ---- routing (static so DestroyDB and tests can reuse them) ----
  /// FNV-1a over the user key, mod num_shards.
  static uint32_t ShardOfKey(const Slice& key, uint32_t num_shards);
  /// The per-shard PM pool path when Options::pm_pool_path is explicit
  /// ("<path>.shard-<i>"); shards with an empty path default to
  /// "<shard dir>/pool.pm" as usual.
  static std::string ShardPmPoolPath(const std::string& base, uint32_t shard);
  /// "<dbname>/shard-<i>".
  static std::string ShardDirName(const std::string& dbname, uint32_t shard);

  // ---- DB interface ----
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  uint64_t GetSnapshot() override;
  void ReleaseSnapshot(uint64_t snapshot) override;
  Status FlushMemTable() override;
  Status CompactLevel0() override;
  Status CompactToLevel1(bool respect_cost_model) override;
  const DbStatistics& statistics() const override;
  DbStatistics& statistics() override;
  bool GetProperty(const std::string& property, uint64_t* value) override;
  bool GetProperty(const std::string& property, std::string* value) override;
  WritePressure GetWritePressure() override;
  uint32_t num_shards() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  WritePressure GetWritePressure(const Slice& key) override;
  WritePressure GetShardWritePressure(uint32_t shard) override;
  obs::MetricsRegistry* metrics_registry() override { return &metrics_; }

  /// Direct shard access for tests/benches.
  DBImpl* shard(uint32_t index) { return shards_[index].get(); }

 private:
  uint32_t Route(const Slice& key) const {
    return ShardOfKey(key, static_cast<uint32_t>(shards_.size()));
  }

  /// Reads or creates the <dbname>/SHARDS marker; fails on a mismatch.
  Status CheckOrPinShardCount();
  Status SetUpSharedArbiter();
  void RegisterAggregatedMetrics();

  // ---- cross-shard writes ----
  /// Runs fn(shard) concurrently for every shard index in `ids` (the last
  /// one inline on the caller); returns once ALL have finished. Uses a
  /// local countdown latch — the pool's Wait() is a global barrier and
  /// would serialize unrelated callers.
  void RunOnShards(const std::vector<uint32_t>& ids,
                   const std::function<void(uint32_t)>& fn);
  /// Two-phase commit of a multi-shard batch: parallel prepare wave
  /// (always fsynced), then parallel commit markers. On a prepare failure
  /// every participant gets a rollback marker and the first error returns.
  Status WriteAtomic(const WriteOptions& options,
                     std::vector<WriteBatch>& subs,
                     const std::vector<uint32_t>& participants);
  /// Legacy independent per-shard commits (atomic_cross_shard_batches =
  /// false), fanned out in parallel.
  Status WriteLegacy(const WriteOptions& options,
                     std::vector<WriteBatch>& subs,
                     const std::vector<uint32_t>& participants);
  /// Recovery resolution pass (Init, after every shard opened): collects
  /// in-doubt txns across shards, decides commit/rollback from the
  /// evidence, applies the verdict with synced markers, then forgets all
  /// retained txn state so the shards start clean.
  Status ResolveInDoubtTxns();
  /// Forgets committed fences whose commit marker is durable on EVERY
  /// participant (until then, WAL rotation keeps carrying the evidence a
  /// sibling's recovery might need). Called opportunistically.
  void DrainForgettableTxns();

  /// Translates a facade snapshot handle into per-shard ReadOptions for
  /// shard `shard`. Unknown handles return NotFound.
  Status TranslateSnapshot(uint64_t handle, uint32_t shard,
                           uint64_t* shard_snapshot) const;

  /// Re-derives agg_stats_ from the live shards (Reset + AddFrom each).
  void RefreshAggregateStats() const;

  Options options_;
  std::string dbname_;
  Env* env_ = nullptr;

  /// The process-wide block cache every shard reads through (nullptr when
  /// block_cache_bytes == 0). Destroyed after the shards.
  std::unique_ptr<BlockCache> shared_cache_;
  std::vector<std::unique_ptr<DBImpl>> shards_;

  // Shared memory arbitration (memory_budget_bytes > 0): one budget over
  // the combined memtable quota, the shared cache and the combined τ_t.
  std::unique_ptr<mem::MemoryBudget> mem_budget_;
  std::unique_ptr<mem::MemoryArbiter> arbiter_;

  // Snapshot handles: facade handle -> one sequence per shard. Bounded by
  // the callers: the RESP layer releases a connection's pinned snapshot on
  // teardown (see CommandHandler::Session), so abandoned SCAN cursors /
  // dropped connections cannot grow this map forever.
  mutable std::mutex snap_mu_;
  uint64_t next_snapshot_handle_ = 1;
  std::map<uint64_t, std::vector<uint64_t>> snapshots_;

  // ---- cross-shard 2PC state ----
  /// Fan-out workers for multi-shard writes (nullptr until Init).
  std::unique_ptr<ThreadPool> fanout_pool_;
  /// Global txn ids, seeded past the max id any shard replayed.
  std::atomic<uint64_t> next_txn_id_{1};
  /// Committed txns whose fences are still retained shard-side; drained by
  /// DrainForgettableTxns once every participant's marker is durable.
  struct PendingForget {
    uint64_t txn_id = 0;
    std::vector<uint32_t> participants;
  };
  std::mutex txn_mu_;
  std::vector<PendingForget> pending_forget_;
  obs::Counter* txn_in_doubt_counter_ = nullptr;   // found at open
  obs::Counter* txn_resolved_commit_counter_ = nullptr;
  obs::Counter* txn_resolved_rollback_counter_ = nullptr;

  // Cross-shard aggregate statistics, refreshed on demand by statistics().
  // The returned reference stays valid but its values only update on the
  // next statistics() call — snapshot-style, good enough for the benches
  // and examples that read it.
  mutable std::mutex stats_mu_;
  mutable DbStatistics agg_stats_;

  /// Facade registry: the server's counters, the shared arbiter's
  /// pmblade.mem.* metrics, plus a snapshot provider that splices in every
  /// shard's registry (summed aggregates + pmblade.shard.<i>.* breakdown).
  obs::MetricsRegistry metrics_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_SHARDED_DB_H_
