// CompactionScheduler: the background worker POOL that runs Algorithm 1
// (internal compaction + the S1/S2/S3 major compaction) OFF the flush thread.
//
// Before this existed, the background flush thread ran every compaction
// inline while holding the DB mutex, so one major compaction stalled every
// reader, writer and the next memtable flush for its whole duration. The
// scheduler decouples them:
//
//   * BackgroundFlush enqueues a "check" (one Algorithm-1 evaluation) and
//     returns; stalled writers are woken as soon as the flush commits.
//   * A worker thread pops the check, snapshots its inputs under a short
//     DB-mutex critical section, runs the merge and all simulated-SSD I/O
//     with the mutex released, and re-acquires it only for the install +
//     manifest commit.
//   * With `workers` > 1, several checks execute CONCURRENTLY. Partition
//     exclusivity is the caller's contract, not the scheduler's: DBImpl's
//     check claims the dirty partitions no other in-flight check holds (see
//     the claim protocol in db_impl.h), so two workers never compact the
//     same partition even though both are inside a check at once.
//   * Manual maintenance (CompactLevel0 / CompactToLevel1) is funneled
//     through RunExclusive, which is a pool-wide BARRIER: the manual job
//     starts only when no other job is running, and no job starts while it
//     runs — manual compactions observe (and leave) quiesced partitions, so
//     they need no claims.
//
// Error discipline: a failed check is RETRYABLE — it is logged, counted and
// re-enqueued up to `retry_limit` consecutive times, then parked until the
// next flush schedules a fresh check. A parked retry chain never idles the
// pool: other workers keep accepting new checks and manual jobs (the streak
// only gates SELF-rescheduling). Compaction failures never poison the DB's
// sticky background error (compactions are always redoable from the state
// they failed over); that error is reserved for flush/WAL/manifest failures.

#ifndef PMBLADE_CORE_COMPACTION_SCHEDULER_H_
#define PMBLADE_CORE_COMPACTION_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/status.h"

namespace pmblade {

class CompactionScheduler {
 public:
  struct Options {
    /// Consecutive failed checks are self-rescheduled up to this many times;
    /// afterwards the scheduler waits for the next external ScheduleCheck.
    int retry_limit = 2;
    /// Worker-pool width. 1 = the historical single-worker scheduler.
    int workers = 1;
    obs::EventBus* event_bus = nullptr;
    obs::MetricsRegistry* metrics = nullptr;  // may be nullptr (tests)
    Clock* clock = nullptr;                   // defaults to SystemClock()
    Logger* logger = nullptr;                 // defaults to NullLogger()
  };

  explicit CompactionScheduler(const Options& options);
  ~CompactionScheduler();

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// The Algorithm-1 evaluation invoked on a worker thread. Must be set
  /// before the first ScheduleCheck. With `workers` > 1 it MUST be safe to
  /// run concurrently with itself (DBImpl's check is: concurrent checks
  /// claim disjoint partition sets).
  void set_check(std::function<Status()> check);

  /// Enqueues one Algorithm-1 check. Deduplicated: while a check is already
  /// queued (but not yet running) this is a no-op — the queued check will
  /// see the caller's state anyway. A check that is merely RUNNING does not
  /// dedup (it snapshotted its inputs already), so concurrent workers can
  /// pick up fresh work. Never blocks.
  void ScheduleCheck();

  /// Runs `job` on a worker thread with pool-wide exclusivity — it starts
  /// only after every in-flight job finishes, and no queued job starts
  /// until it returns — and reports its status. Used by manual compaction
  /// entry points so they serialize with all background checks. Returns
  /// Aborted after Shutdown.
  Status RunExclusive(std::function<Status()> job);

  /// Blocks until nothing is queued or running (including self-scheduled
  /// retries). Maintenance callers use this to observe post-compaction
  /// state deterministically.
  void WaitIdle();

  /// Stops the pool: in-flight jobs finish, queued checks are dropped
  /// (compaction work is always redoable), queued manual jobs complete with
  /// Aborted. Joins every worker. Idempotent; called by the destructor.
  void Shutdown();

  // ---- introspection (tests / gauges) ----
  /// Queued + running jobs.
  size_t QueueDepth() const;
  /// True while at least one job is running.
  bool running() const;
  /// Number of jobs currently executing (<= workers()).
  int active() const;
  int workers() const { return options_.workers; }
  uint64_t checks_completed() const;
  uint64_t checks_failed() const;
  uint64_t retries() const;

 private:
  struct ManualWaiter {
    bool done = false;       // guarded by mu_
    Status status;           // guarded by mu_
  };
  enum class JobKind { kCheck, kManual };
  struct Job {
    JobKind kind;
    std::function<Status()> fn;
    std::shared_ptr<ManualWaiter> waiter;  // kManual only
  };

  void WorkerLoop();
  /// mu_ held. True when the front job may start on this worker: checks run
  /// whenever no manual job is active; a manual job additionally needs the
  /// pool drained (running_jobs_ == 0).
  bool CanPopLocked() const;
  void EmitQueued(size_t depth, JobKind kind);
  void EmitStart(JobKind kind);
  void EmitEnd(JobKind kind, const Status& status, uint64_t start_nanos,
               int failure_streak);

  Options options_;
  Clock* clock_;
  Logger* logger_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // worker wakeup
  std::condition_variable done_cv_;   // manual waiters + WaitIdle
  std::deque<Job> queue_;
  std::function<Status()> check_;     // set once before first use
  bool check_queued_ = false;         // dedup flag for kCheck entries
  int running_jobs_ = 0;              // jobs currently executing
  bool exclusive_active_ = false;     // a manual job is running: pool barrier
  bool shutdown_ = false;
  /// Failure streak of the check CHAIN (not of one worker): any successful
  /// check resets it, any failed one bumps it. Guarded by mu_, so the
  /// retry/park decision is race-free under N workers.
  int consecutive_failures_ = 0;

  // Counters (registered with the metrics registry when provided; also read
  // directly by tests).
  obs::Counter* queued_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* dedup_counter_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_COMPACTION_SCHEDULER_H_
