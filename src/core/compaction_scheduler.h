// CompactionScheduler: the dedicated background worker that runs Algorithm 1
// (internal compaction + the S1/S2/S3 major compaction) OFF the flush thread.
//
// Before this existed, the background flush thread ran every compaction
// inline while holding the DB mutex, so one major compaction stalled every
// reader, writer and the next memtable flush for its whole duration. The
// scheduler decouples them:
//
//   * BackgroundFlush enqueues a "check" (one Algorithm-1 evaluation) and
//     returns; stalled writers are woken as soon as the flush commits.
//   * The single worker thread pops the check, snapshots its inputs under a
//     short DB-mutex critical section, runs the merge and all simulated-SSD
//     I/O with the mutex released, and re-acquires it only for the install +
//     manifest commit.
//   * Manual maintenance (CompactLevel0 / CompactToLevel1) is funneled
//     through the same thread via RunExclusive, so at most ONE compaction is
//     ever in flight engine-wide — install sites never race each other, and
//     a partition's sorted/L1 runs are only ever mutated from this thread.
//
// Error discipline: a failed check is RETRYABLE — it is logged, counted and
// re-enqueued up to `retry_limit` consecutive times, then parked until the
// next flush schedules a fresh check. Compaction failures never poison the
// DB's sticky background error (compactions are always redoable from the
// state they failed over); that error is reserved for flush/WAL/manifest
// failures.

#ifndef PMBLADE_CORE_COMPACTION_SCHEDULER_H_
#define PMBLADE_CORE_COMPACTION_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/status.h"

namespace pmblade {

class CompactionScheduler {
 public:
  struct Options {
    /// Consecutive failed checks are self-rescheduled up to this many times;
    /// afterwards the scheduler waits for the next external ScheduleCheck.
    int retry_limit = 2;
    obs::EventBus* event_bus = nullptr;
    obs::MetricsRegistry* metrics = nullptr;  // may be nullptr (tests)
    Clock* clock = nullptr;                   // defaults to SystemClock()
    Logger* logger = nullptr;                 // defaults to NullLogger()
  };

  explicit CompactionScheduler(const Options& options);
  ~CompactionScheduler();

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// The Algorithm-1 evaluation invoked on the worker thread. Must be set
  /// before the first ScheduleCheck.
  void set_check(std::function<Status()> check);

  /// Enqueues one Algorithm-1 check. Deduplicated: while a check is already
  /// queued (but not yet running) this is a no-op — the queued check will
  /// see the caller's state anyway. Never blocks.
  void ScheduleCheck();

  /// Runs `job` on the worker thread after any queued work and returns its
  /// status. Used by manual compaction entry points so they serialize with
  /// background checks. Returns Aborted after Shutdown.
  Status RunExclusive(std::function<Status()> job);

  /// Blocks until nothing is queued or running (including self-scheduled
  /// retries). Maintenance callers use this to observe post-compaction
  /// state deterministically.
  void WaitIdle();

  /// Stops the worker: the in-flight job finishes, queued checks are
  /// dropped (compaction work is always redoable), queued manual jobs
  /// complete with Aborted. Idempotent; called by the destructor.
  void Shutdown();

  // ---- introspection (tests / gauges) ----
  size_t QueueDepth() const;
  bool running() const;
  uint64_t checks_completed() const;
  uint64_t checks_failed() const;
  uint64_t retries() const;

 private:
  struct ManualWaiter {
    bool done = false;       // guarded by mu_
    Status status;           // guarded by mu_
  };
  enum class JobKind { kCheck, kManual };
  struct Job {
    JobKind kind;
    std::function<Status()> fn;
    std::shared_ptr<ManualWaiter> waiter;  // kManual only
  };

  void WorkerLoop();
  void EmitQueued(size_t depth, JobKind kind);
  void EmitStart(JobKind kind);
  void EmitEnd(JobKind kind, const Status& status, uint64_t start_nanos,
               int failure_streak);

  Options options_;
  Clock* clock_;
  Logger* logger_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // worker wakeup
  std::condition_variable done_cv_;   // manual waiters + WaitIdle
  std::deque<Job> queue_;
  std::function<Status()> check_;     // set once before first use
  bool check_queued_ = false;         // dedup flag for kCheck entries
  bool running_ = false;
  bool shutdown_ = false;
  int consecutive_failures_ = 0;

  // Counters (registered with the metrics registry when provided; also read
  // directly by tests).
  obs::Counter* queued_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* dedup_counter_ = nullptr;

  std::thread worker_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_COMPACTION_SCHEDULER_H_
