#include "core/statistics.h"

#include <cstdio>

namespace pmblade {

void DbStatistics::Reset() {
  for (auto& counter : reads_by_source_) counter.store(0);
  writes_.store(0);
  scans_.store(0);
  scan_entries_.store(0);
  user_bytes_written_.store(0);
  flushes_.store(0);
  internal_compactions_.store(0);
  internal_compaction_bytes_in_.store(0);
  internal_compaction_bytes_out_.store(0);
  major_compactions_.store(0);
  major_compaction_bytes_.store(0);
  std::lock_guard<std::mutex> lock(mu_);
  get_latency_.Clear();
  put_latency_.Clear();
  scan_latency_.Clear();
}

std::string DbStatistics::ToString() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "reads: mem=%llu pm=%llu ssd=%llu miss=%llu (pm-hit %.1f%%)\n"
           "writes=%llu (%llu B) scans=%llu\n"
           "flushes=%llu internal-compactions=%llu major-compactions=%llu",
           static_cast<unsigned long long>(reads(ReadSource::kMemtable)),
           static_cast<unsigned long long>(reads(ReadSource::kPmLevel0)),
           static_cast<unsigned long long>(reads(ReadSource::kSsdLevel1)),
           static_cast<unsigned long long>(reads(ReadSource::kNotFound)),
           PmHitRatio() * 100.0,
           static_cast<unsigned long long>(writes()),
           static_cast<unsigned long long>(user_bytes_written()),
           static_cast<unsigned long long>(scans()),
           static_cast<unsigned long long>(flushes()),
           static_cast<unsigned long long>(internal_compactions()),
           static_cast<unsigned long long>(major_compactions()));
  return buf;
}

}  // namespace pmblade
