#include "core/statistics.h"

#include <cstdio>

#include "obs/metrics.h"

namespace pmblade {

void DbStatistics::Reset() {
  for (auto& counter : reads_by_source_) counter.store(0);
  writes_.store(0);
  scans_.store(0);
  scan_entries_.store(0);
  user_bytes_written_.store(0);
  flushes_.store(0);
  internal_compactions_.store(0);
  internal_compaction_bytes_in_.store(0);
  internal_compaction_bytes_out_.store(0);
  major_compactions_.store(0);
  major_compaction_bytes_.store(0);
  get_latency_.Clear();
  put_latency_.Clear();
  scan_latency_.Clear();
}

void DbStatistics::AddFrom(const DbStatistics& other) {
  for (int i = 0; i < kNumReadSources; ++i) {
    reads_by_source_[i].fetch_add(other.reads_by_source_[i].load(),
                                  std::memory_order_relaxed);
  }
  writes_.fetch_add(other.writes_.load(), std::memory_order_relaxed);
  scans_.fetch_add(other.scans_.load(), std::memory_order_relaxed);
  scan_entries_.fetch_add(other.scan_entries_.load(),
                          std::memory_order_relaxed);
  user_bytes_written_.fetch_add(other.user_bytes_written_.load(),
                                std::memory_order_relaxed);
  flushes_.fetch_add(other.flushes_.load(), std::memory_order_relaxed);
  internal_compactions_.fetch_add(other.internal_compactions_.load(),
                                  std::memory_order_relaxed);
  internal_compaction_bytes_in_.fetch_add(
      other.internal_compaction_bytes_in_.load(), std::memory_order_relaxed);
  internal_compaction_bytes_out_.fetch_add(
      other.internal_compaction_bytes_out_.load(), std::memory_order_relaxed);
  major_compactions_.fetch_add(other.major_compactions_.load(),
                               std::memory_order_relaxed);
  major_compaction_bytes_.fetch_add(other.major_compaction_bytes_.load(),
                                    std::memory_order_relaxed);
  get_latency_.MergeIn(other.get_latency_.Merged());
  put_latency_.MergeIn(other.put_latency_.Merged());
  scan_latency_.MergeIn(other.scan_latency_.Merged());
}

void DbStatistics::RegisterWith(obs::MetricsRegistry* registry) {
  auto counter = [registry](const std::string& name,
                            const std::atomic<uint64_t>* src) {
    registry->RegisterCounterCallback(name, [src] { return src->load(); });
  };
  counter("pmblade.reads.memtable", &reads_by_source_[0]);
  counter("pmblade.reads.pm_l0", &reads_by_source_[1]);
  counter("pmblade.reads.ssd_l1", &reads_by_source_[2]);
  counter("pmblade.reads.miss", &reads_by_source_[3]);
  counter("pmblade.writes", &writes_);
  counter("pmblade.write.user_bytes", &user_bytes_written_);
  counter("pmblade.scans", &scans_);
  counter("pmblade.scan.entries", &scan_entries_);
  counter("pmblade.flush.count", &flushes_);
  counter("pmblade.compaction.internal.count", &internal_compactions_);
  counter("pmblade.compaction.internal.bytes_in",
          &internal_compaction_bytes_in_);
  counter("pmblade.compaction.internal.bytes_out",
          &internal_compaction_bytes_out_);
  counter("pmblade.compaction.major.count", &major_compactions_);
  counter("pmblade.compaction.major.bytes", &major_compaction_bytes_);

  registry->RegisterHistogramCallback(
      "pmblade.latency.get", [this] { return get_latency_.Merged(); });
  registry->RegisterHistogramCallback(
      "pmblade.latency.put", [this] { return put_latency_.Merged(); });
  registry->RegisterHistogramCallback(
      "pmblade.latency.scan", [this] { return scan_latency_.Merged(); });
}

std::string DbStatistics::ToString() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "reads: mem=%llu pm=%llu ssd=%llu miss=%llu (pm-hit %.1f%%)\n"
           "writes=%llu (%llu B) scans=%llu\n"
           "flushes=%llu internal-compactions=%llu major-compactions=%llu",
           static_cast<unsigned long long>(reads(ReadSource::kMemtable)),
           static_cast<unsigned long long>(reads(ReadSource::kPmLevel0)),
           static_cast<unsigned long long>(reads(ReadSource::kSsdLevel1)),
           static_cast<unsigned long long>(reads(ReadSource::kNotFound)),
           PmHitRatio() * 100.0,
           static_cast<unsigned long long>(writes()),
           static_cast<unsigned long long>(user_bytes_written()),
           static_cast<unsigned long long>(scans()),
           static_cast<unsigned long long>(flushes()),
           static_cast<unsigned long long>(internal_compactions()),
           static_cast<unsigned long long>(major_compactions()));
  return buf;
}

}  // namespace pmblade
