// Partition: one key-range shard of the partitioned LSM-tree (Section III).
// A partition owns:
//   * a list of UNSORTED level-0 tables (newest first, mutually
//     overlapping — flushed memtable segments),
//   * one SORTED level-0 run (non-overlapping tables, the output of the
//     last internal compaction),
//   * a stack of SSD runs (newest first; each run is non-overlapping
//     SSTables tagged with a compaction-policy level). The leveled policy
//     keeps at most one run, tagged level 1 — the paper's single level-1
//     run; tiered / lazy-leveling policies stack several runs whose level
//     tags are non-decreasing with depth,
//   * the counters the cost models consume (n_i, n_i^r, n_i^w, n_i^u,
//     reads/sec), reset whenever the partition is compacted.

#ifndef PMBLADE_CORE_PARTITION_H_
#define PMBLADE_CORE_PARTITION_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "memtable/internal_key.h"
#include "pmtable/l0_table.h"
#include "util/clock.h"

namespace pmblade {

/// One sorted run of SSD SSTables (ascending key order) plus its policy
/// level tag. Level 0 is the PM side; SSD runs start at level 1.
struct SsdRun {
  uint32_t level = 1;
  std::vector<L0TableRef> tables;  // ascending key order

  uint64_t bytes() const {
    uint64_t total = 0;
    for (const auto& table : tables) total += table->size_bytes();
    return total;
  }
};

class Partition {
 public:
  /// `begin` inclusive, `end` exclusive over user keys; empty begin = -inf,
  /// empty end = +inf.
  Partition(uint64_t id, std::string begin, std::string end, Clock* clock)
      : id_(id), begin_(std::move(begin)), end_(std::move(end)),
        clock_(clock), counter_epoch_nanos_(clock->NowNanos()) {}

  uint64_t id() const { return id_; }
  const std::string& begin_key() const { return begin_; }
  const std::string& end_key() const { return end_; }

  bool Contains(const Slice& user_key) const {
    if (!begin_.empty() && user_key.compare(Slice(begin_)) < 0) return false;
    if (!end_.empty() && user_key.compare(Slice(end_)) >= 0) return false;
    return true;
  }

  // ---- table sets ----
  // Ref discipline with a background compaction in flight (every access to
  // the vectors themselves happens under the DB mutex):
  //   * Readers copy the ref vectors under the mutex and probe lock-free;
  //     the deferred L0Table::Destroy (storage freed at last ref drop)
  //     keeps those copies valid across any concurrent install.
  //   * The flush thread only PREPENDS to unsorted() (newest first).
  //   * Only the compaction worker that CLAIMED this partition (see the
  //     claim protocol in db_impl.h — at most one claimant per partition,
  //     enforced under the DB mutex) removes from unsorted() or mutates
  //     sorted_run()/ssd_runs(). A compaction therefore snapshots the
  //     vectors, merges with the mutex released, and installs by removing
  //     exactly the snapshotted refs (RemoveTables) — tables flushed during
  //     the merge stay, still newest-first, above the compaction's output.
  std::vector<L0TableRef>& unsorted() { return unsorted_; }
  std::vector<L0TableRef>& sorted_run() { return sorted_run_; }
  std::vector<SsdRun>& ssd_runs() { return ssd_runs_; }
  const std::vector<L0TableRef>& unsorted() const { return unsorted_; }
  const std::vector<L0TableRef>& sorted_run() const { return sorted_run_; }
  const std::vector<SsdRun>& ssd_runs() const { return ssd_runs_; }

  /// Removes exactly the tables in `snapshot` (by table identity) from
  /// `from`, preserving the order of everything else. Install step of a
  /// compaction whose inputs were snapshotted before the mutex was
  /// released; entries that arrived since (flushed tables at the front of
  /// unsorted()) are untouched. Caller holds the DB mutex.
  static void RemoveTables(std::vector<L0TableRef>* from,
                           const std::vector<L0TableRef>& snapshot) {
    from->erase(std::remove_if(from->begin(), from->end(),
                               [&snapshot](const L0TableRef& table) {
                                 for (const auto& snap : snapshot) {
                                   if (snap.get() == table.get()) return true;
                                 }
                                 return false;
                               }),
                from->end());
  }

  /// Total level-0 bytes (s_i).
  uint64_t L0Bytes() const {
    uint64_t total = 0;
    for (const auto& table : unsorted_) total += table->size_bytes();
    for (const auto& table : sorted_run_) total += table->size_bytes();
    return total;
  }
  /// Total SSD bytes across every run in the stack. (Under the leveled
  /// policy the stack is at most one level-1 run, so this is the paper's
  /// level-1 size.)
  uint64_t SsdBytes() const {
    uint64_t total = 0;
    for (const auto& run : ssd_runs_) total += run.bytes();
    return total;
  }

  /// The deepest level tag in the run stack (0 when no SSD runs exist).
  uint32_t MaxSsdLevel() const {
    return ssd_runs_.empty() ? 0 : ssd_runs_.back().level;
  }

  // ---- cost-model counters ----
  // Lock-free: readers bump NoteRead under the DB mutex, but the group-commit
  // leader runs NoteWrite outside it (the Eq. 2 probe happens in the
  // unlocked WAL/memtable section of the write pipeline).
  void NoteRead() { reads_.fetch_add(1, std::memory_order_relaxed); }
  void NoteWrite(bool is_update) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (is_update) updates_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot of counters in the cost model's shape.
  PartitionCounters Counters() const {
    PartitionCounters counters;
    counters.partition_id = id_;
    counters.unsorted_tables = static_cast<uint32_t>(unsorted_.size());
    counters.sorted_tables = static_cast<uint32_t>(sorted_run_.size());
    counters.size_bytes = L0Bytes();
    counters.reads = reads_.load(std::memory_order_relaxed);
    counters.writes = writes_.load(std::memory_order_relaxed);
    counters.updates = updates_.load(std::memory_order_relaxed);
    uint64_t elapsed = clock_->NowNanos() - counter_epoch_nanos_;
    counters.reads_per_sec =
        elapsed > 0 ? static_cast<double>(counters.reads) * 1e9 / elapsed
                    : 0.0;
    return counters;
  }

  /// Called after any compaction touches this partition ("re-zeroed when a
  /// major compaction or internal compaction occurs").
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    updates_.store(0, std::memory_order_relaxed);
    counter_epoch_nanos_ = clock_->NowNanos();
  }

 private:
  uint64_t id_;
  std::string begin_;
  std::string end_;
  Clock* clock_;

  std::vector<L0TableRef> unsorted_;   // newest first
  std::vector<L0TableRef> sorted_run_; // ascending key order
  /// SSD run stack, newest first; level tags non-decreasing with depth.
  std::vector<SsdRun> ssd_runs_;

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> updates_{0};
  uint64_t counter_epoch_nanos_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_PARTITION_H_
