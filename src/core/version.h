// Version helpers: iterators over table runs and read-path lookups shared by
// the DB implementation.

#ifndef PMBLADE_CORE_VERSION_H_
#define PMBLADE_CORE_VERSION_H_

#include <memory>
#include <vector>

#include "memtable/internal_key.h"
#include "pmtable/l0_table.h"
#include "util/iterator.h"

namespace pmblade {

/// Concatenating iterator over a RUN: a vector of non-overlapping tables in
/// ascending key order. Seek binary-searches table boundaries, then the
/// table. The run vector is copied (shared_ptrs), so the iterator stays
/// valid across version changes.
Iterator* NewRunIterator(const InternalKeyComparator* icmp,
                         std::vector<L0TableRef> run);

/// Point lookup in a run: picks the single candidate table by boundary
/// binary search. Same out-parameters as L0TableGet (including the optional
/// bloom probe accounting).
Status RunGet(const std::vector<L0TableRef>& run,
              const InternalKeyComparator& icmp, const LookupKey& lkey,
              std::string* value, bool* found, Status* result_status,
              ReadProbeStats* probe = nullptr);

/// A snapshot of one partition's table sets, taken under the DB mutex so
/// iterators survive version changes.
struct PartitionSnapshot {
  std::string begin_key;  // user keys; empty = unbounded
  std::string end_key;
  std::vector<L0TableRef> unsorted;  // newest first
  std::vector<L0TableRef> sorted_run;
  /// SSD runs, newest first (one table vector per run; the level tags are
  /// irrelevant to the read path).
  std::vector<std::vector<L0TableRef>> ssd_runs;
};

/// Lazy concatenating iterator over range-disjoint partitions: only the
/// partition under the cursor has its tables open, so a Seek costs one
/// partition's worth of child seeks instead of the whole database's.
Iterator* NewPartitionConcatIterator(const InternalKeyComparator* icmp,
                                     std::vector<PartitionSnapshot> parts);

/// Wraps a merged internal-key iterator into the user-visible view at
/// `snapshot`: hides newer-than-snapshot entries, surfaces only the newest
/// visible version per user key, skips tombstones. Takes ownership of
/// `internal`. Shared by pmblade::DB and the baseline engines.
Iterator* NewUserIterator(Iterator* internal,
                          const InternalKeyComparator* icmp,
                          SequenceNumber snapshot);

}  // namespace pmblade

#endif  // PMBLADE_CORE_VERSION_H_
