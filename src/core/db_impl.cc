#include "core/db_impl.h"

#include <algorithm>

#include "compaction/merging_iterator.h"
#include "core/sharded_db.h"
#include "core/version.h"
#include "memtable/txn_record.h"
#include "obs/exporter.h"
#include "pmtable/array_table.h"
#include "pmtable/snappy_table.h"
#include "sstable/ssd_l0_table.h"
#include "util/coding.h"
#include "util/sync_point.h"

namespace pmblade {

namespace {

std::string WalFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string SstFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

/// Bounds a sorted internal-key iterator to user keys < `end` (empty end =
/// unbounded). Used to slice the immutable memtable per partition.
class BoundedIterator final : public Iterator {
 public:
  BoundedIterator(Iterator* base, std::string end_user_key)
      : base_(base), end_(std::move(end_user_key)) {}

  bool Valid() const override {
    if (!base_->Valid()) return false;
    if (end_.empty()) return true;
    return ExtractUserKey(base_->key()).compare(Slice(end_)) < 0;
  }
  void SeekToFirst() override {}  // base pre-positioned by the caller
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override { base_->Next(); }
  void Prev() override {}
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  Iterator* base_;
  std::string end_;
};

/// Clips an owned sorted internal-key iterator to the user-key range
/// [begin, end) — empty bound = unbounded. Subcompaction slices wrap their
/// merged input in one of these: boundaries compare USER keys, so every
/// version of a user key lands in exactly one slice and the per-slice dedup
/// and tombstone logic in ProcessSlice stays correct.
class RangeClippedIterator final : public Iterator {
 public:
  RangeClippedIterator(Iterator* base, std::string begin_user_key,
                       std::string end_user_key)
      : base_(base),
        begin_(std::move(begin_user_key)),
        end_(std::move(end_user_key)) {}

  bool Valid() const override {
    if (!base_->Valid()) return false;
    if (end_.empty()) return true;
    return ExtractUserKey(base_->key()).compare(Slice(end_)) < 0;
  }
  void SeekToFirst() override {
    if (begin_.empty()) {
      base_->SeekToFirst();
    } else {
      // Position at the first entry whose user key >= begin_: seek with the
      // largest tag so no version of begin_ itself is skipped.
      std::string target;
      AppendInternalKey(&target, Slice(begin_), kMaxSequenceNumber,
                        kValueTypeForSeek);
      base_->Seek(Slice(target));
    }
  }
  void SeekToLast() override {}  // forward-only, like the merge that reads it
  void Seek(const Slice&) override {}
  void Next() override { base_->Next(); }
  void Prev() override {}
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  std::string begin_;
  std::string end_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Open / Init / recovery
// ---------------------------------------------------------------------------

Status DB::Open(const Options& options, const std::string& dbname,
                std::unique_ptr<DB>* db) {
  db->reset();
  if (options.num_shards > 1) {
    auto sharded = std::make_unique<ShardedDB>(options, dbname);
    PMBLADE_RETURN_IF_ERROR(sharded->Init());
    *db = std::move(sharded);
    return Status::OK();
  }
  // A directory pinned by a ShardedDB cannot be opened single-shard: the
  // data lives in shard-<i> subdirectories the classic engine would
  // silently ignore, presenting an empty DB.
  {
    Env* env = options.env != nullptr ? options.env : PosixEnv();
    const std::string marker = dbname + "/SHARDS";
    if (env->FileExists(marker)) {
      std::string pinned;
      (void)ReadFileToString(env, marker, &pinned);
      return Status::InvalidArgument(
          dbname + " was created with num_shards=" + pinned +
          "; open it with that shard count");
    }
  }
  auto impl = std::make_unique<DBImpl>(options, dbname);
  PMBLADE_RETURN_IF_ERROR(impl->Init());
  *db = std::move(impl);
  return Status::OK();
}

Status DestroyDB(const Options& options, const std::string& dbname) {
  Env* env = options.env != nullptr ? options.env : PosixEnv();
  if (!options.pm_pool_path.empty()) {
    if (env->FileExists(options.pm_pool_path)) {
      env->RemoveFile(options.pm_pool_path);
    }
    // A sharded DB opened with an explicit pool path suffixes it per shard.
    for (uint32_t i = 0; i < options.num_shards; ++i) {
      const std::string shard_pool =
          ShardedDB::ShardPmPoolPath(options.pm_pool_path, i);
      if (env->FileExists(shard_pool)) env->RemoveFile(shard_pool);
    }
  }
  if (!env->FileExists(dbname)) return Status::OK();
  return env->RemoveDirRecursively(dbname);
}

DBImpl::DBImpl(const Options& options, const std::string& dbname)
    : options_(options), dbname_(dbname), icmp_(BytewiseComparator()) {}

DBImpl::~DBImpl() {
  // Join the arbiter thread first: its callbacks touch the metrics
  // registry, the block cache and the cost model, all torn down below.
  if (arbiter_ != nullptr) arbiter_->Stop();
  // The SSD model may be caller-owned and outlive this DB; detach our bus
  // before it dies.
  if (model_ != nullptr) model_->set_event_bus(nullptr);
  // Drain the background flush before tearing anything down (the job takes
  // mu_ itself, so wait without holding it). This must precede the
  // scheduler shutdown: an inline-mode flush blocks on the scheduler
  // draining, and any flush may enqueue a check.
  if (flush_pool_ != nullptr) {
    flush_pool_->Wait();
    flush_pool_.reset();
  }
  // Stop the compaction worker: the in-flight job (which takes mu_ itself)
  // finishes, queued checks are dropped — compaction is redoable, the next
  // open re-evaluates.
  if (compaction_scheduler_ != nullptr) compaction_scheduler_->Shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_file_ != nullptr) wal_file_->Close();
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
}

Status DBImpl::Init() {
  PMBLADE_RETURN_IF_ERROR(options_.Sanitize());
  env_ = options_.env;
  raw_env_ = options_.raw_env;
  clock_ = options_.clock;

  if (env_->FileExists(dbname_) && options_.error_if_exists) {
    return Status::InvalidArgument(dbname_ + " already exists");
  }
  if (!env_->FileExists(dbname_)) {
    if (!options_.create_if_missing) {
      return Status::NotFound(dbname_ + " does not exist");
    }
  }
  PMBLADE_RETURN_IF_ERROR(env_->CreateDir(dbname_));

  if (options_.ssd_model != nullptr) {
    model_ = options_.ssd_model;
  } else {
    SsdModelOptions mopts;
    mopts.inject_latency = false;
    mopts.clock = clock_;
    owned_model_.reset(new SsdModel(mopts));
    model_ = owned_model_.get();
  }

  // bloom_bits_per_key <= 0 is the no-filter baseline; block_cache_bytes
  // == 0 the no-cache one (both used by benchmark A/B runs).
  if (options_.bloom_bits_per_key > 0) {
    filter_policy_.reset(new BloomFilterPolicy(options_.bloom_bits_per_key));
  }
  if (options_.shared_block_cache != nullptr) {
    block_cache_ = options_.shared_block_cache;  // ShardedDB-owned
  } else if (options_.block_cache_bytes > 0) {
    owned_block_cache_.reset(new BlockCache(options_.block_cache_bytes));
    block_cache_ = owned_block_cache_.get();
  }
  memtable_limit_.store(options_.memtable_bytes, std::memory_order_relaxed);

  // PM pool (always opened; cheap when unused by the layout).
  std::string pool_path = options_.pm_pool_path.empty()
                              ? dbname_ + "/pool.pm"
                              : options_.pm_pool_path;
  PmPoolOptions popts;
  popts.capacity = options_.pm_pool_capacity;
  popts.latency = options_.pm_latency;
  popts.clock = clock_;
  PMBLADE_RETURN_IF_ERROR(PmPool::Open(pool_path, popts, &pool_));

  // Factories. Level-1 is always SSTables; level-0 layout is configurable.
  L0FactoryOptions l1opts;
  l1opts.layout = L0Layout::kSstable;
  l1opts.icmp = &icmp_;
  l1opts.filter_policy = filter_policy_.get();
  l1opts.block_cache = block_cache_;
  l1opts.block_size = options_.block_size;
  l1opts.ssd_dir = dbname_;
  l1_factory_.reset(new L0TableFactory(l1opts, pool_.get(), env_));

  if (options_.l0_layout == L0Layout::kSstable) {
    l0_factory_.reset();  // level-0 shares the level-1 factory
  } else {
    L0FactoryOptions l0opts = l1opts;
    l0opts.layout = options_.l0_layout;
    l0opts.pm_table = options_.pm_table;
    l0_factory_.reset(new L0TableFactory(l0opts, pool_.get(), env_));
  }

  cost_model_.reset(new CostModel(options_.cost));

  // The compaction policy. Sanitize already rejected unknown names, but the
  // factory revalidates so a direct DBImpl construction fails loudly too.
  {
    CompactionPolicyOptions popts_policy;
    popts_policy.policy = options_.compaction_policy;
    popts_policy.size_ratio = options_.compaction_size_ratio;
    popts_policy.max_ssd_levels = options_.max_ssd_levels;
    popts_policy.adaptive_tau_t = options_.adaptive_tau_t;
    popts_policy.tau_t_max_factor = options_.tau_t_max_factor;
    PMBLADE_RETURN_IF_ERROR(
        NewCompactionPicker(popts_policy, cost_model_.get(), &picker_));
  }

  // ---- observability wiring ----
  if (options_.trace_ring_capacity > 0) {
    trace_.reset(new obs::TraceRecorder(options_.trace_ring_capacity));
    events_.Subscribe(trace_.get());
  }
  stats_.RegisterWith(&metrics_);
  pool_->RegisterMetrics(&metrics_);
  model_->RegisterMetrics(&metrics_);
  model_->set_event_bus(&events_);
  // Cost-model accounting counters, cached so the compaction path (which
  // runs under mu_) never touches the registry lock.
  decision_counter_ = metrics_.GetCounter("pmblade.cost.decisions");
  eq1_trigger_counter_ = metrics_.GetCounter("pmblade.cost.eq1_triggered");
  eq2_trigger_counter_ = metrics_.GetCounter("pmblade.cost.eq2_triggered");
  keep_set_counter_ = metrics_.GetCounter("pmblade.cost.keep_set_selections");
  wal_sync_counter_ = metrics_.GetCounter("pmblade.wal.syncs");
  // Write-pipeline instruments: group-commit amortization and backpressure.
  group_counter_ = metrics_.GetCounter("pmblade.write.groups");
  group_write_counter_ = metrics_.GetCounter("pmblade.write.group_writes");
  group_size_hist_ = metrics_.GetHistogram("pmblade.write.group_size");
  slowdown_counter_ = metrics_.GetCounter("pmblade.write.slowdowns");
  stall_counter_ = metrics_.GetCounter("pmblade.write.stalls");
  stall_nanos_counter_ = metrics_.GetCounter("pmblade.write.stall_nanos");
  bg_flush_counter_ = metrics_.GetCounter("pmblade.flush.bg_flushes");
  // Two-phase-commit instruments (stay at zero on the single-shard path).
  txn_prepared_counter_ = metrics_.GetCounter("pmblade.txn.prepared");
  txn_committed_counter_ = metrics_.GetCounter("pmblade.txn.committed");
  txn_rolled_back_counter_ = metrics_.GetCounter("pmblade.txn.rolled_back");
  metrics_.RegisterGaugeCallback("pmblade.write.writes_per_sync", [this] {
    uint64_t syncs = wal_sync_counter_->Value();
    if (syncs == 0) return 0.0;
    return static_cast<double>(group_write_counter_->Value()) /
           static_cast<double>(syncs);
  });
  metrics_.RegisterGaugeCallback("pmblade.flush.queue_depth", [this] {
    return flush_pool_ != nullptr
               ? static_cast<double>(flush_pool_->PendingTasks())
               : 0.0;
  });
  metrics_.RegisterGaugeCallback("pmblade.write.queue_depth", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(writers_.size());
  });
  // Computed gauges. Callbacks run outside the registry lock (see
  // MetricsRegistry::Snapshot), so locking mu_ here is safe.
  metrics_.RegisterGaugeCallback("pmblade.io.q_flush", [this] {
    int q = options_.major.max_io_q;
    int q_comp = model_->Inflight(IoClass::kCompaction);
    int q_cli = model_->Inflight(IoClass::kClient);
    return static_cast<double>(std::max(q - q_comp - q_cli, 0));
  });
  metrics_.RegisterGaugeCallback("pmblade.lsm.l0_bytes", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->L0Bytes();
    return static_cast<double>(total);
  });
  metrics_.RegisterGaugeCallback("pmblade.lsm.l1_bytes", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->SsdBytes();
    return static_cast<double>(total);
  });
  metrics_.RegisterGaugeCallback("pmblade.lsm.num_partitions", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(partitions_.size());
  });
  metrics_.RegisterGaugeCallback("pmblade.lsm.unsorted_tables", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->unsorted().size();
    return static_cast<double>(total);
  });
  metrics_.RegisterGaugeCallback("pmblade.lsm.sorted_tables", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->sorted_run().size();
    return static_cast<double>(total);
  });
  // LSM shape under the active policy: the policy ordinal plus per-level
  // run/file/byte gauges (level 0 = PM level-0; SSD runs start at 1).
  metrics_.RegisterGaugeCallback("pmblade.policy", [this] {
    return static_cast<double>(static_cast<int>(picker_->kind()));
  });
  for (uint32_t level = 0; level <= options_.max_ssd_levels; ++level) {
    char gauge_name[64];
    snprintf(gauge_name, sizeof(gauge_name), "pmblade.lsm.level%u.runs",
             level);
    metrics_.RegisterGaugeCallback(gauge_name, [this, level] {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t runs = 0, files = 0, bytes = 0;
      LevelShapeLocked(level, &runs, &files, &bytes);
      return static_cast<double>(runs);
    });
    snprintf(gauge_name, sizeof(gauge_name), "pmblade.lsm.level%u.files",
             level);
    metrics_.RegisterGaugeCallback(gauge_name, [this, level] {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t runs = 0, files = 0, bytes = 0;
      LevelShapeLocked(level, &runs, &files, &bytes);
      return static_cast<double>(files);
    });
    snprintf(gauge_name, sizeof(gauge_name), "pmblade.lsm.level%u.bytes",
             level);
    metrics_.RegisterGaugeCallback(gauge_name, [this, level] {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t runs = 0, files = 0, bytes = 0;
      LevelShapeLocked(level, &runs, &files, &bytes);
      return static_cast<double>(bytes);
    });
  }
  // Route major-compaction instrumentation through our bus/registry.
  options_.major.event_bus = &events_;
  options_.major.metrics = &metrics_;

  // Read-path instruments: bloom probe counters (fed from Get's
  // ReadProbeStats) and block-cache gauges.
  bloom_check_counter_ = metrics_.GetCounter("pmblade.bloom.checks");
  bloom_negative_counter_ = metrics_.GetCounter("pmblade.bloom.negatives");
  bloom_fp_counter_ = metrics_.GetCounter("pmblade.bloom.false_positives");
  if (block_cache_ != nullptr) {
    BlockCache* cache = block_cache_;
    metrics_.RegisterGaugeCallback("pmblade.blockcache.hits", [cache] {
      return static_cast<double>(cache->hits());
    });
    metrics_.RegisterGaugeCallback("pmblade.blockcache.misses", [cache] {
      return static_cast<double>(cache->misses());
    });
    metrics_.RegisterGaugeCallback("pmblade.blockcache.charge", [cache] {
      return static_cast<double>(cache->TotalCharge());
    });
    metrics_.RegisterGaugeCallback("pmblade.blockcache.capacity", [cache] {
      return static_cast<double>(cache->capacity());
    });
  }

  // Memory arbitration: one budget over {memtable quota, block cache,
  // Eq. 3 keep-set}, retuned by the MemoryArbiter's feedback thread. The
  // configured memtable_bytes/block_cache_bytes/cost.tau_t seed the split;
  // any remainder of the budget lands on the keep-set.
  if (options_.memory_budget_bytes > 0) {
    const uint64_t total = options_.memory_budget_bytes;
    uint64_t floors[mem::kNumComponents];
    uint64_t initial[mem::kNumComponents];
    floors[mem::kMemtable] = std::max<uint64_t>(64 << 10, total / 32);
    floors[mem::kBlockCache] =
        block_cache_ != nullptr ? std::max<uint64_t>(64 << 10, total / 32)
                                : 0;
    floors[mem::kKeepSet] = 4096;
    initial[mem::kMemtable] = options_.memtable_bytes;
    initial[mem::kBlockCache] =
        block_cache_ != nullptr ? options_.block_cache_bytes : 0;
    initial[mem::kKeepSet] = options_.cost.tau_t;
    mem_budget_.reset(new mem::MemoryBudget(total, floors, initial));

    auto apply = [this](int component, uint64_t target) {
      switch (component) {
        case mem::kMemtable:
          memtable_limit_.store(static_cast<size_t>(target),
                                std::memory_order_relaxed);
          break;
        case mem::kBlockCache:
          if (block_cache_ != nullptr) block_cache_->SetCapacity(target);
          break;
        case mem::kKeepSet:
          // 0 would read as "unset" to base_tau_t(); the floor keeps the
          // target positive, but stay safe against direct Transfer calls.
          cost_model_->set_dynamic_tau_t(std::max<uint64_t>(target, 1));
          break;
      }
    };
    // Push the seeded split into the engine (the ctor may have reshaped
    // the configured values to fit the budget and floors).
    for (int c = 0; c < mem::kNumComponents; ++c) {
      apply(c, mem_budget_->target(c));
    }

    mem::ArbiterOptions aopts;
    aopts.interval_ms = options_.arbiter_interval_ms;
    aopts.clock = clock_;
    aopts.metrics = &metrics_;
    aopts.events = &events_;
    aopts.logger = options_.logger;
    arbiter_.reset(new mem::MemoryArbiter(
        aopts, mem_budget_.get(),
        [this] {
          mem::ArbiterInputs in;
          in.reads = stats_.total_reads();
          in.reads_ssd_l1 = stats_.reads(ReadSource::kSsdLevel1);
          in.writes = stats_.writes();
          if (block_cache_ != nullptr) {
            in.cache_hits = block_cache_->hits();
            in.cache_misses = block_cache_->misses();
          }
          in.bloom_checks = bloom_check_counter_->Value();
          in.bloom_negatives = bloom_negative_counter_->Value();
          in.bloom_false_positives = bloom_fp_counter_->Value();
          in.flushes = stats_.flushes();
          in.slowdowns = slowdown_counter_->Value();
          in.stalls = stall_counter_->Value();
          return in;
        },
        apply));
    arbiter_->Start();
  }

  mem_ = new MemTable(icmp_);
  mem_->Ref();
  flush_pool_.reset(new ThreadPool(1));

  // The dedicated Algorithm-1 worker (see compaction_scheduler.h for the
  // thread/lock model). Created before recovery so manual compactions work
  // immediately after Open.
  CompactionScheduler::Options copts;
  copts.retry_limit = options_.compaction_retry_limit;
  copts.workers = options_.compaction_workers;
  copts.event_bus = &events_;
  copts.metrics = &metrics_;
  copts.clock = clock_;
  copts.logger = options_.logger;
  compaction_scheduler_.reset(new CompactionScheduler(copts));
  compaction_scheduler_->set_check([this] {
    return BackgroundCompactionCheck();
  });
  file_gc_fail_counter_ = metrics_.GetCounter("pmblade.gc.remove_failures");
  subcompaction_counter_ =
      metrics_.GetCounter("pmblade.compaction.subcompactions");
  major_wall_nanos_counter_ =
      metrics_.GetCounter("pmblade.compaction.major.wall_nanos");

  // Live q_cli: when env_ is a SimEnv sharing our model, its file wrappers
  // already classify client I/O into the inflight gauges; otherwise DBImpl
  // registers its own client ops (WAL writes, SSD-resident reads) so the
  // io-gate's q_cli term reflects real foreground pressure instead of a
  // constant 0.
  {
    SimEnv* sim = dynamic_cast<SimEnv*>(env_);
    track_client_io_ = (sim == nullptr || sim->model() != model_);
  }

  // Recover or bootstrap.
  ManifestState state;
  Status s = ReadManifest(env_, dbname_, &state);
  if (s.ok()) {
    l1_factory_->set_next_file_number(state.next_file_number);
    last_sequence_ = state.last_sequence;
    flushed_sequence_ = state.flushed_sequence;
    PMBLADE_RETURN_IF_ERROR(RecoverPartitions(state));
    if (state.wal_number != 0) {
      PMBLADE_RETURN_IF_ERROR(ReplayWals(state.wal_number));
    }
  } else if (s.IsNotFound()) {
    // Fresh DB: create partitions from the configured boundaries.
    std::string prev;
    for (const auto& boundary : options_.partition_boundaries) {
      partitions_.push_back(std::make_unique<Partition>(
          next_partition_id_++, prev, boundary, clock_));
      prev = boundary;
    }
    partitions_.push_back(std::make_unique<Partition>(
        next_partition_id_++, prev, std::string(), clock_));
    // No manifest means nothing on disk is referenced: a directory that
    // still holds pool objects or .sst files (a crash before the very first
    // manifest commit) is all garbage. WAL data replays into the memtable
    // regardless.
    for (const auto& info : pool_->ListObjects()) {
      pool_->Free(info.id);
    }
    std::vector<std::string> children;
    if (env_->GetChildren(dbname_, &children).ok()) {
      for (const auto& child : children) {
        if (child.size() > 4 &&
            child.compare(child.size() - 4, 4, ".sst") == 0) {
          env_->RemoveFile(dbname_ + "/" + child);
        }
      }
    }
  } else {
    return s;
  }

  // The manifest's next_file_number can be STALE: logs rotated after the
  // last manifest commit carry numbers at or above it. Allocating from the
  // stale counter would hand NewWal() the number of a replayed live log and
  // O_TRUNC it — the replayed data would then exist only in DRAM until the
  // next flush. Bump past every replayed log before allocating anything.
  for (uint64_t number : live_wals_) {
    if (number >= l1_factory_->peek_next_file_number()) {
      l1_factory_->set_next_file_number(number + 1);
    }
  }

  PMBLADE_RETURN_IF_ERROR(NewWal());
  live_wals_.push_back(wal_number_);
  return PersistManifest();
}

Status DBImpl::RecoverPartitions(const ManifestState& state) {
  partitions_.clear();

  std::set<uint64_t> referenced_pm_ids;
  std::set<uint64_t> referenced_files;

  TableReaderOptions ropts;
  ropts.comparator = &icmp_;
  ropts.filter_policy = filter_policy_.get();
  ropts.block_cache = block_cache_;

  auto open_pm = [&](uint64_t id, L0TableRef* table) -> Status {
    referenced_pm_ids.insert(id);
    auto objects = pool_->ListObjects();
    uint32_t kind = 0;
    for (const auto& info : objects) {
      if (info.id == id) {
        kind = info.kind;
        break;
      }
    }
    switch (kind) {
      case kPmTableObject: {
        std::shared_ptr<PmTable> t;
        PMBLADE_RETURN_IF_ERROR(PmTable::Open(pool_.get(), id, &t));
        *table = std::move(t);
        break;
      }
      case kArrayTableObject: {
        std::shared_ptr<ArrayTable> t;
        PMBLADE_RETURN_IF_ERROR(ArrayTable::Open(pool_.get(), id, &t));
        *table = std::move(t);
        break;
      }
      case kSnappyTableObject:
      case kSnappyGroupTableObject: {
        std::shared_ptr<SnappyTable> t;
        PMBLADE_RETURN_IF_ERROR(SnappyTable::Open(pool_.get(), id, &t));
        *table = std::move(t);
        break;
      }
      default:
        return Status::Corruption("manifest references missing pm object");
    }
    // The DRAM whole-table bloom is not part of the PM media format;
    // rebuild it by scanning the table (it is immutable from here on), so
    // reopened tables filter exactly like freshly flushed ones.
    if (filter_policy_ != nullptr) {
      (*table)->BuildFilter(filter_policy_.get());
    }
    return Status::OK();
  };

  auto open_sst = [&](uint64_t number, L0TableRef* table) -> Status {
    referenced_files.insert(number);
    TableReaderOptions opts = ropts;
    opts.file_number = number;
    std::shared_ptr<SsdL0Table> t;
    PMBLADE_RETURN_IF_ERROR(SsdL0Table::Open(
        env_, SstFileName(dbname_, number), number, opts, &t));
    *table = std::move(t);
    return Status::OK();
  };

  for (const auto& mp : state.partitions) {
    auto partition = std::make_unique<Partition>(mp.id, mp.begin_key,
                                                 mp.end_key, clock_);
    next_partition_id_ = std::max(next_partition_id_, mp.id + 1);
    for (uint64_t id : mp.unsorted_pm_ids) {
      L0TableRef t;
      PMBLADE_RETURN_IF_ERROR(open_pm(id, &t));
      partition->unsorted().push_back(std::move(t));
    }
    for (uint64_t id : mp.sorted_pm_ids) {
      L0TableRef t;
      PMBLADE_RETURN_IF_ERROR(open_pm(id, &t));
      partition->sorted_run().push_back(std::move(t));
    }
    for (uint64_t number : mp.unsorted_file_numbers) {
      L0TableRef t;
      PMBLADE_RETURN_IF_ERROR(open_sst(number, &t));
      partition->unsorted().push_back(std::move(t));
    }
    for (uint64_t number : mp.sorted_file_numbers) {
      L0TableRef t;
      PMBLADE_RETURN_IF_ERROR(open_sst(number, &t));
      partition->sorted_run().push_back(std::move(t));
    }
    for (const ManifestSsdRun& mrun : mp.ssd_runs) {
      SsdRun run;
      run.level = mrun.level;
      for (uint64_t number : mrun.file_numbers) {
        L0TableRef t;
        PMBLADE_RETURN_IF_ERROR(open_sst(number, &t));
        run.tables.push_back(std::move(t));
      }
      partition->ssd_runs().push_back(std::move(run));
    }
    partitions_.push_back(std::move(partition));
  }

  // Garbage-collect pool objects an interrupted compaction left behind.
  for (const auto& info : pool_->ListObjects()) {
    if (referenced_pm_ids.count(info.id) == 0) {
      pool_->Free(info.id);
    }
  }
  // Garbage-collect orphan .sst files.
  std::vector<std::string> children;
  if (env_->GetChildren(dbname_, &children).ok()) {
    for (const auto& child : children) {
      if (child.size() > 4 &&
          child.compare(child.size() - 4, 4, ".sst") == 0) {
        uint64_t number = strtoull(child.c_str(), nullptr, 10);
        if (referenced_files.count(number) == 0) {
          env_->RemoveFile(dbname_ + "/" + child);
        }
      }
    }
  }
  return Status::OK();
}

Status DBImpl::ReplayWals(uint64_t floor) {
  // The manifest's wal number is a FLOOR: every log >= it may hold
  // acknowledged writes not yet in level-0 tables (with a background flush
  // in flight there can be several — the imm_'s logs plus the active one).
  // Replay them all, ascending, so a crash mid-flush loses nothing; logs
  // below the floor were flushed before the last manifest commit and are
  // garbage-collected here.
  std::vector<uint64_t> numbers;
  std::vector<std::string> children;
  PMBLADE_RETURN_IF_ERROR(env_->GetChildren(dbname_, &children));
  for (const auto& child : children) {
    if (child.size() > 8 && child.compare(0, 4, "wal-") == 0 &&
        child.compare(child.size() - 4, 4, ".log") == 0) {
      uint64_t number = strtoull(child.c_str() + 4, nullptr, 10);
      if (number < floor) {
        env_->RemoveFile(dbname_ + "/" + child);
      } else {
        numbers.push_back(number);
      }
    }
  }
  std::sort(numbers.begin(), numbers.end());

  struct LogReporter : wal::Reader::Reporter {
    Logger* logger;
    void Corruption(size_t bytes, const Status& status) override {
      PMBLADE_WARN(logger, "wal replay dropped %zu bytes: %s", bytes,
                   status.ToString().c_str());
    }
  } reporter;
  reporter.logger = options_.logger;

  // Sequences at or below this were flushed to level-0 before the last
  // manifest commit: a replayed commit marker whose payload falls under it
  // must NOT re-apply (carried fence records can outlive their payload's
  // flush), or the memtable would hold duplicate internal keys. This must
  // be the true flush watermark — the manifest's last_sequence runs ahead
  // of it whenever the memtable holds acknowledged writes, and using that
  // as the floor drops committed payloads on a second recovery.
  const SequenceNumber flushed_floor = flushed_sequence_;

  for (uint64_t number : numbers) {
    std::unique_ptr<SequentialFile> file;
    PMBLADE_RETURN_IF_ERROR(
        env_->NewSequentialFile(WalFileName(dbname_, number), &file));
    wal::Reader reader(file.get(), &reporter);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) continue;
      if (IsTxnRecord(record)) {
        TxnRecord txn;
        Status ts = DecodeTxnRecord(record, &txn);
        if (!ts.ok()) {
          PMBLADE_WARN(options_.logger, "wal replay dropped txn record: %s",
                       ts.ToString().c_str());
          continue;
        }
        if (txn.txn_id > max_seen_txn_id_) max_seen_txn_id_ = txn.txn_id;
        switch (txn.type) {
          case TxnRecordType::kPrepare: {
            // Carried copies of an already-committed fence must not demote
            // it back to pending.
            TxnEntry& e = txns_[txn.txn_id];
            if (!e.committed) {
              e.participants = txn.participants;
              e.payload.assign(txn.payload.data(), txn.payload.size());
              e.marker_ticket = 0;  // already durable: it came off disk
            }
            break;
          }
          case TxnRecordType::kCommit: {
            auto it = txns_.find(txn.txn_id);
            if (it == txns_.end()) {
              // Marker-only evidence: the fence was forgotten before the
              // prepare's log died, but the marker outlived it. Keep the
              // verdict for sibling resolution.
              replay_committed_.insert(txn.txn_id);
              break;
            }
            if (!it->second.committed && txn.base_seq > flushed_floor) {
              WriteBatch batch;
              batch.SetContentsFrom(Slice(it->second.payload));
              batch.SetSequence(txn.base_seq);
              Status s = batch.InsertInto(mem_);
              if (!s.ok()) return s;
              SequenceNumber end_seq = txn.base_seq + batch.Count() - 1;
              if (end_seq > last_sequence_) last_sequence_ = end_seq;
            }
            it->second.committed = true;
            it->second.base_seq = txn.base_seq;
            it->second.marker_ticket = 0;
            break;
          }
          case TxnRecordType::kRollback: {
            auto it = txns_.find(txn.txn_id);
            if (it != txns_.end()) {
              if (it->second.committed) break;  // commit evidence wins
              txns_.erase(it);
            }
            replay_rolled_back_.insert(txn.txn_id);
            break;
          }
        }
        continue;
      }
      WriteBatch batch;
      batch.SetContentsFrom(record);
      Status s = batch.InsertInto(mem_);
      if (!s.ok()) return s;
      SequenceNumber end_seq = batch.Sequence() + batch.Count() - 1;
      if (end_seq > last_sequence_) last_sequence_ = end_seq;
    }
    // The replayed log stays live (and in the manifest's floor) until the
    // recovered memtable is flushed; deleting it before then would lose the
    // data on a second crash.
    live_wals_.push_back(number);
  }
  return Status::OK();
}

Status DBImpl::NewWal() {
  // Only called from a write-leader context (or Init), so no append can be
  // racing the rotation. Old logs are deleted when their flush commits.
  uint64_t new_number = l1_factory_->NextFileNumber();
  std::unique_ptr<WritableFile> file;
  PMBLADE_RETURN_IF_ERROR(
      env_->NewWritableFile(WalFileName(dbname_, new_number), &file));
  if (wal_file_ != nullptr) {
    // Sync the rotated-out log before abandoning it. Sync writes only ever
    // fsync the CURRENT wal, yet a sync ack promises durability for the
    // whole write history — any unsynced tail left behind here would be
    // covered by that promise but dropped by a power cut.
    PMBLADE_RETURN_IF_ERROR(wal_file_->Sync());
    wal_synced_ticket_.store(wal_append_ticket_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    PMBLADE_SYNC_POINT("DBImpl::NewWal:OldWalSynced");
    wal_file_->Close();
  }
  wal_number_ = new_number;
  wal_file_ = std::move(file);
  wal_.reset(new wal::Writer(wal_file_.get()));
  return CarryTxnRecordsLocked();
}

Status DBImpl::CarryTxnRecordsLocked() {
  // Re-home every retained txn record into the fresh WAL: pending prepares
  // (their payload is nowhere else until committed+flushed) and committed
  // fences (siblings' recovery may still need the commit evidence). The
  // copies in the rotated-out logs die when their flush commits, so the new
  // WAL must hold these durably first — hence the fsync when anything was
  // carried.
  if (txns_.empty()) return Status::OK();
  std::string record;
  for (auto& entry : txns_) {
    EncodePrepareRecord(entry.first, entry.second.participants,
                        Slice(entry.second.payload), &record);
    PMBLADE_RETURN_IF_ERROR(wal_->AddRecord(record));
    wal_append_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (entry.second.committed) {
      EncodeCommitRecord(entry.first, entry.second.base_seq, &record);
      PMBLADE_RETURN_IF_ERROR(wal_->AddRecord(record));
      wal_append_ticket_.fetch_add(1, std::memory_order_relaxed);
    }
    entry.second.marker_ticket =
        wal_append_ticket_.load(std::memory_order_relaxed);
  }
  PMBLADE_RETURN_IF_ERROR(wal_file_->Sync());
  wal_synced_ticket_.store(wal_append_ticket_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  PMBLADE_SYNC_POINT("DBImpl::NewWal:TxnRecordsCarried");
  return Status::OK();
}

Status DBImpl::PersistManifest() {
  ManifestState state;
  state.next_file_number = l1_factory_->peek_next_file_number();
  state.last_sequence = last_sequence_;
  state.flushed_sequence = flushed_sequence_;
  // Replay floor: the oldest log still holding un-flushed data.
  state.wal_number = live_wals_.empty() ? wal_number_ : live_wals_.front();
  for (const auto& partition : partitions_) {
    ManifestPartition mp;
    mp.id = partition->id();
    mp.begin_key = partition->begin_key();
    mp.end_key = partition->end_key();
    const bool ssd_l0 = options_.l0_layout == L0Layout::kSstable;
    for (const auto& table : partition->unsorted()) {
      (ssd_l0 ? mp.unsorted_file_numbers : mp.unsorted_pm_ids)
          .push_back(table->id());
    }
    for (const auto& table : partition->sorted_run()) {
      (ssd_l0 ? mp.sorted_file_numbers : mp.sorted_pm_ids)
          .push_back(table->id());
    }
    for (const SsdRun& run : partition->ssd_runs()) {
      ManifestSsdRun mrun;
      mrun.level = run.level;
      for (const auto& table : run.tables) {
        mrun.file_numbers.push_back(table->id());
      }
      mp.ssd_runs.push_back(std::move(mrun));
    }
    state.partitions.push_back(std::move(mp));
  }
  return WriteManifest(env_, dbname_, state);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  const uint64_t start = clock_->NowNanos();
  WriterState w(updates, options.sync || options_.sync_wal);
  Status status = WriteInternal(options, w);
  if (updates != nullptr) {
    stats_.RecordWrite(updates->ApproximateSize(),
                       clock_->NowNanos() - start);
  }
  return status;
}

Status DBImpl::WriteInternal(const WriteOptions& options, WriterState& w) {
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(lock);
  }
  if (w.done) {
    // A leader committed this write as part of its group.
    return w.status;
  }

  // This thread is the group leader: it owns the WAL and the memtable until
  // it pops itself off the queue, which is what makes the unlocked section
  // below single-writer.
  Status status;
  WriterState* last_writer = &w;
  if (w.kind != WriteKind::kBatch) {
    // A txn op leads a txn group: every txn op queued directly behind it
    // shares one WAL append run and one fsync. BuildBatchGroup still never
    // coalesces a kBatch group into or past a txn op.
    status = TxnGroupWriteLocked(lock, w, &last_writer);
  } else {
  status = MakeRoomForWrite(lock, /*force=*/w.batch == nullptr);
  SequenceNumber last_sequence = last_sequence_;
  if (status.ok() && w.batch != nullptr) {
    bool group_sync = false;
    size_t group_members = 0;
    WriteBatch* group = BuildBatchGroup(&last_writer, &group_sync,
                                        &group_members);
    group->SetSequence(last_sequence + 1);
    last_sequence += group->Count();

    MemTable* mem = mem_;
    bool sync_error = false;
    {
      // WAL append, ONE fsync for the whole group, Eq. 2 probes and the
      // memtable insert all run outside mu_: readers and queueing writers
      // proceed concurrently.
      lock.unlock();
      {
        // The WAL append/fsync lands on the SSD: register one client op so
        // the io-gate's q_cli gauge sees live foreground write pressure
        // (no-op when the SimEnv already classifies this I/O).
        ScopedExternalIo wal_io(track_client_io_ ? model_ : nullptr,
                                IoClass::kClient);
        status = wal_->AddRecord(group->rep());
        const uint64_t append_ticket =
            wal_append_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
        PMBLADE_SYNC_POINT("DBImpl::Write:AfterWalAppend");
        if (status.ok() && group_sync) {
          const uint64_t sync_start = clock_->NowNanos();
          status = wal_file_->Sync();
          if (!status.ok()) {
            sync_error = true;
          } else {
            wal_sync_counter_->Inc();
            wal_synced_ticket_.store(append_ticket,
                                     std::memory_order_relaxed);
            PMBLADE_SYNC_POINT("DBImpl::Write:AfterWalSync");
            if (events_.active()) {
              events_.Emit(
                  obs::Event(obs::EventType::kWalSync, clock_->NowNanos())
                      .With("bytes", static_cast<double>(group->rep().size()))
                      .With("writes", static_cast<double>(group_members))
                      .With("duration_nanos",
                            static_cast<double>(clock_->NowNanos() -
                                                sync_start)));
            }
          }
        }
      }
      if (status.ok()) {
        NoteGroupWrites(*group, mem);
        status = group->InsertInto(mem);
      }
      lock.lock();
    }
    if (sync_error) {
      // The durability state of the WAL tail is unknown; fail every
      // subsequent write rather than acknowledge on a broken log.
      bg_error_ = status;
    }
    if (status.ok()) {
      // Publish the group's sequences only now that every entry is in the
      // memtable: a reader snapshotting last_sequence_ can never observe a
      // torn group.
      PMBLADE_SYNC_POINT("DBImpl::Write:BeforePublish");
      last_sequence_ = last_sequence;
      group_counter_->Inc();
      group_write_counter_->Inc(group_members);
      group_size_hist_->Observe(group_members);
    }
    if (group == &group_batch_) group_batch_.Clear();
  }
  }

  // Wake everyone the group covered (they return with the group status) and
  // promote the next queued writer to leader.
  while (true) {
    WriterState* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      if (!ready->own_status) ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();

  return status;
}

// ---------------------------------------------------------------------------
// Cross-shard two-phase commit (see the header block and sharded_db.cc)
// ---------------------------------------------------------------------------

Status DBImpl::PrepareTxn(const WriteOptions& options, uint64_t txn_id,
                          const std::vector<uint32_t>& participants,
                          WriteBatch* batch) {
  if (batch == nullptr || batch->Count() == 0) {
    return Status::InvalidArgument("empty txn sub-batch");
  }
  // Prepares are ALWAYS fsynced, regardless of the user's sync flag: the
  // all-prepares-durable state is what lets recovery COMMIT an in-doubt
  // transaction, so an unsynced prepare would turn "resolution commits"
  // into data loss on the other shards.
  WriterState w(WriteKind::kTxnPrepare, txn_id, batch, /*sync=*/true);
  w.participants = &participants;
  return WriteInternal(options, w);
}

Status DBImpl::CommitTxn(const WriteOptions& options, uint64_t txn_id) {
  WriterState w(WriteKind::kTxnCommit, txn_id, nullptr,
                options.sync || options_.sync_wal);
  return WriteInternal(options, w);
}

Status DBImpl::RollbackTxn(const WriteOptions& options, uint64_t txn_id) {
  WriterState w(WriteKind::kTxnRollback, txn_id, nullptr,
                options.sync || options_.sync_wal);
  return WriteInternal(options, w);
}

Status DBImpl::TxnGroupWriteLocked(std::unique_lock<std::mutex>& lock,
                                   WriterState& leader,
                                   WriterState** last_writer) {
  // Coalesce the leader with every txn op queued directly behind it — the
  // txn mirror of BuildBatchGroup. Concurrent transactions' records share
  // one WAL append run and at most ONE fsync; without this, N concurrent
  // cross-shard writers pay N sequential prepare fsyncs per shard and 2PC
  // loses the latency the parallel fan-out bought.
  std::vector<WriterState*> group;
  group.push_back(&leader);
  for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
    if ((*it)->kind == WriteKind::kBatch) break;
    group.push_back(*it);
  }
  *last_writer = group.back();

  bool has_commit = false;
  for (WriterState* m : group) {
    if (m->kind == WriteKind::kTxnCommit) has_commit = true;
  }
  if (has_commit) {
    // Commits insert buffered payloads into the memtable; make room the
    // same way a regular group does (may rotate the WAL, which carries the
    // pending prepares along).
    PMBLADE_RETURN_IF_ERROR(MakeRoomForWrite(lock, /*force=*/false));
    // MakeRoomForWrite may have dropped the lock; scoop up txn ops that
    // queued behind the group in the meantime.
    group.clear();
    group.push_back(&leader);
    for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
      if ((*it)->kind == WriteKind::kBatch) break;
      group.push_back(*it);
    }
    *last_writer = group.back();
  } else if (!bg_error_.ok()) {
    return bg_error_;
  }

  // Stage every member's WAL record under the lock. Members whose op
  // resolves without IO (unknown-txn commit, idempotent re-commit) get
  // their individual status here and are excluded from the append run.
  struct Staged {
    WriterState* w;
    std::string record;
    WriteBatch payload;           // commit only
    SequenceNumber base_seq = 0;  // commit only
    uint64_t ticket = 0;
  };
  std::vector<Staged> staged;
  staged.reserve(group.size());
  SequenceNumber next_seq = last_sequence_;  // running cursor for commits
  bool group_sync = false;
  bool staged_commit = false;
  MemTable* mem = mem_;
  for (WriterState* m : group) {
    switch (m->kind) {
      case WriteKind::kTxnPrepare: {
        staged.emplace_back();
        Staged& s = staged.back();
        s.w = m;
        EncodePrepareRecord(m->txn_id, *m->participants, m->batch->rep(),
                            &s.record);
        group_sync = group_sync || m->sync;
        break;
      }
      case WriteKind::kTxnCommit: {
        auto it = txns_.find(m->txn_id);
        if (it == txns_.end()) {
          m->own_status = true;
          m->status = Status::InvalidArgument("commit of unknown txn");
          break;
        }
        if (it->second.committed) {  // idempotent
          m->own_status = true;
          m->status = Status::OK();
          break;
        }
        staged.emplace_back();
        Staged& s = staged.back();
        s.w = m;
        s.payload.SetContentsFrom(Slice(it->second.payload));
        s.base_seq = next_seq + 1;
        s.payload.SetSequence(s.base_seq);
        next_seq += s.payload.Count();
        EncodeCommitRecord(m->txn_id, s.base_seq, &s.record);
        group_sync = group_sync || m->sync;
        staged_commit = true;
        break;
      }
      case WriteKind::kTxnRollback: {
        staged.emplace_back();
        Staged& s = staged.back();
        s.w = m;
        EncodeRollbackRecord(m->txn_id, &s.record);
        group_sync = group_sync || m->sync;
        break;
      }
      case WriteKind::kBatch:
        break;  // unreachable: collection stops at the first kBatch
    }
  }
  const bool leader_validated_out = leader.own_status;

  Status status;
  if (!staged.empty()) {
    bool sync_error = false;
    lock.unlock();
    {
      ScopedExternalIo wal_io(track_client_io_ ? model_ : nullptr,
                              IoClass::kClient);
      for (Staged& s : staged) {
        if (status.ok()) status = wal_->AddRecord(s.record);
        s.ticket =
            wal_append_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (status.ok() && s.w->kind == WriteKind::kTxnCommit) {
          PMBLADE_SYNC_POINT("DBImpl::CommitTxn:AfterAppend");
        }
      }
      if (status.ok() && group_sync) {
        status = wal_file_->Sync();
        if (!status.ok()) {
          sync_error = true;
        } else {
          wal_sync_counter_->Inc();
          wal_synced_ticket_.store(staged.back().ticket,
                                   std::memory_order_relaxed);
          for (Staged& s : staged) {
            if (s.w->kind == WriteKind::kTxnPrepare) {
              PMBLADE_SYNC_POINT("DBImpl::PrepareTxn:AfterSync");
            }
          }
        }
      }
    }
    if (status.ok()) {
      for (Staged& s : staged) {
        if (s.w->kind != WriteKind::kTxnCommit) continue;
        NoteGroupWrites(s.payload, mem);
        status = s.payload.InsertInto(mem);
        if (!status.ok()) break;
      }
    }
    if (status.ok() && events_.active()) {
      for (Staged& s : staged) {
        obs::EventType type = s.w->kind == WriteKind::kTxnPrepare
                                  ? obs::EventType::kTxnPrepare
                                  : s.w->kind == WriteKind::kTxnCommit
                                        ? obs::EventType::kTxnCommit
                                        : obs::EventType::kTxnRollback;
        obs::Event event(type, clock_->NowNanos());
        event.With("txn_id", static_cast<double>(s.w->txn_id));
        if (s.w->kind == WriteKind::kTxnPrepare) {
          event.With("participants",
                     static_cast<double>(s.w->participants->size()))
              .With("bytes", static_cast<double>(s.w->batch->rep().size()));
        }
        events_.Emit(event);
      }
    }
    lock.lock();
    if (sync_error) {
      // Same poison rule as the batch path: the WAL tail's durability is
      // unknown, so no later write may be acknowledged on this log.
      bg_error_ = status;
    }
  }

  if (status.ok()) {
    if (staged_commit) {
      // Publish AFTER the memtable inserts, exactly like the batch path: a
      // reader snapshotting last_sequence_ never observes a torn commit.
      PMBLADE_SYNC_POINT("DBImpl::CommitTxn:BeforePublish");
      last_sequence_ = next_seq;
    }
    for (Staged& s : staged) {
      switch (s.w->kind) {
        case WriteKind::kTxnPrepare: {
          TxnEntry& entry = txns_[s.w->txn_id];
          entry.participants = *s.w->participants;
          entry.payload = s.w->batch->rep();
          entry.committed = false;
          entry.marker_ticket = s.ticket;
          if (s.w->txn_id > max_seen_txn_id_) max_seen_txn_id_ = s.w->txn_id;
          txn_prepared_counter_->Inc();
          break;
        }
        case WriteKind::kTxnCommit: {
          auto it = txns_.find(s.w->txn_id);  // re-find: mu_ was released
          if (it != txns_.end()) {
            it->second.committed = true;
            it->second.base_seq = s.base_seq;
            it->second.marker_ticket = s.ticket;
          }
          txn_committed_counter_->Inc();
          break;
        }
        case WriteKind::kTxnRollback:
          txns_.erase(s.w->txn_id);
          txn_rolled_back_counter_->Inc();
          break;
        case WriteKind::kBatch:
          break;
      }
    }
  }

  // Stamp the group outcome on every member that went through the IO path
  // so the caller's wake loop leaves validation outcomes untouched; the
  // leader's own result is the return value.
  for (Staged& s : staged) {
    s.w->own_status = true;
    s.w->status = status;
  }
  return leader_validated_out ? leader.status : status;
}

std::vector<DBImpl::InDoubtTxn> DBImpl::GetInDoubtTxns() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InDoubtTxn> result;
  for (const auto& entry : txns_) {
    if (entry.second.committed) continue;
    InDoubtTxn txn;
    txn.txn_id = entry.first;
    txn.participants = entry.second.participants;
    result.push_back(std::move(txn));
  }
  return result;
}

DBImpl::TxnPeerState DBImpl::QueryTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it != txns_.end()) {
    return it->second.committed ? TxnPeerState::kCommitted
                                : TxnPeerState::kPrepared;
  }
  if (replay_committed_.count(txn_id) != 0) return TxnPeerState::kCommitted;
  if (replay_rolled_back_.count(txn_id) != 0) {
    return TxnPeerState::kRolledBack;
  }
  return TxnPeerState::kUnknown;
}

bool DBImpl::TxnMarkerDurable(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return true;  // already forgotten
  return it->second.marker_ticket <=
         wal_synced_ticket_.load(std::memory_order_relaxed);
}

void DBImpl::ForgetTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  txns_.erase(txn_id);
  replay_committed_.erase(txn_id);
  replay_rolled_back_.erase(txn_id);
}

uint64_t DBImpl::MaxSeenTxnId() {
  std::lock_guard<std::mutex> lock(mu_);
  return max_seen_txn_id_;
}

std::vector<uint64_t> DBImpl::GetRetainedTxnIds() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> result;
  for (const auto& entry : txns_) result.push_back(entry.first);
  for (uint64_t txn_id : replay_committed_) result.push_back(txn_id);
  for (uint64_t txn_id : replay_rolled_back_) result.push_back(txn_id);
  return result;
}

WriteBatch* DBImpl::BuildBatchGroup(WriterState** last_writer, bool* sync,
                                    size_t* num_members) {
  WriterState* first = writers_.front();
  WriteBatch* result = first->batch;
  size_t size = result->ApproximateSize();
  *sync = first->sync;
  *last_writer = first;
  *num_members = 1;

  // Cap the group: never past the configured bound, and tighter when the
  // leader itself is small so tiny writes aren't delayed behind megabytes
  // of followers.
  size_t max_size = options_.write_group_max_bytes;
  if (size <= (128 << 10) && size + (128 << 10) < max_size) {
    max_size = size + (128 << 10);
  }

  for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
    WriterState* candidate = *it;
    // A force-flush marker or txn op must lead its own turn; stop
    // coalescing there.
    if (candidate->batch == nullptr ||
        candidate->kind != WriteKind::kBatch) {
      break;
    }
    if (size + candidate->batch->ApproximateSize() > max_size) break;
    if (result == first->batch) {
      // Switch to the scratch batch; the leader's own batch is untouched.
      group_batch_.Clear();
      group_batch_.Append(*result);
      result = &group_batch_;
    }
    group_batch_.Append(*candidate->batch);
    size += candidate->batch->ApproximateSize();
    // One fsync covers the whole group: any member that wants durability
    // upgrades everyone (the satellite cost is zero — see Options docs).
    *sync |= candidate->sync;
    *last_writer = candidate;
    ++*num_members;
  }
  return result;
}

void DBImpl::NoteGroupWrites(const WriteBatch& group, MemTable* mem) {
  // Partition write/update counters for the cost model. Update detection
  // probes only the memtable (cheap, DRAM, no value copy): hot keys
  // rewritten within a memtable window are what Eq. 2 cares about. Runs in
  // the unlocked leader section BEFORE the group is inserted, so the probe
  // sees only prior writes.
  struct CounterHandler : WriteBatch::Handler {
    DBImpl* db;
    MemTable* mem;
    void Put(const Slice& key, const Slice&) override {
      Partition* p = db->FindPartition(key);
      if (p == nullptr) return;
      LookupKey lkey(key, kMaxSequenceNumber);
      p->NoteWrite(mem->Contains(lkey));
    }
    void Delete(const Slice& key) override {
      Partition* p = db->FindPartition(key);
      if (p != nullptr) p->NoteWrite(true);
    }
  } handler;
  handler.db = this;
  handler.mem = mem;
  (void)group.Iterate(&handler);  // we built the group; it cannot be malformed
}

Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                bool force) {
  bool allow_delay = !force;
  while (true) {
    if (!bg_error_.ok()) return bg_error_;
    const size_t usage = mem_->ApproximateMemoryUsage();
    // The rotation threshold is dynamic: the memory arbiter retunes
    // memtable_limit_ at runtime (it equals options_.memtable_bytes when
    // the arbiter is off).
    const size_t limit = memtable_limit_.load(std::memory_order_relaxed);
    if (allow_delay && imm_ != nullptr &&
        usage >= static_cast<size_t>(limit *
                                     options_.write_slowdown_watermark)) {
      // Soft limit: the flush is behind. Delay this write once by ~1 ms to
      // shed load gradually instead of hitting the hard stall cliff.
      slowdown_counter_->Inc();
      lock.unlock();
      clock_->SleepForNanos(options_.write_slowdown_nanos);
      lock.lock();
      allow_delay = false;
      continue;
    }
    if (!force && usage < limit) break;
    if (imm_ != nullptr) {
      // Hard stall: both memtables are full; wait for the background flush.
      stall_counter_->Inc();
      const uint64_t stall_start = clock_->NowNanos();
      flush_done_cv_.wait(lock, [this] {
        return imm_ == nullptr || !bg_error_.ok();
      });
      stall_nanos_counter_->Inc(clock_->NowNanos() - stall_start);
      continue;
    }
    if (mem_->num_entries() == 0) break;  // nothing to rotate
    PMBLADE_RETURN_IF_ERROR(SwitchMemTableLocked());
    force = false;
  }
  return Status::OK();
}

Status DBImpl::SwitchMemTableLocked() {
  // MakeRoomForWrite guarantees imm_ == nullptr here.
  std::vector<uint64_t> feeding = live_wals_;
  PMBLADE_RETURN_IF_ERROR(NewWal());
  live_wals_.push_back(wal_number_);
  PMBLADE_SYNC_POINT("DBImpl::SwitchMemTable:AfterNewWal");
  imm_wals_ = std::move(feeding);
  imm_ = mem_;
  // Writes are quiesced here (leader context under mu_), so last_sequence_
  // is exactly the frozen memtable's ceiling.
  imm_ceiling_ = last_sequence_;
  mem_ = new MemTable(icmp_);
  mem_->Ref();
  flush_pool_->Submit([this] { BackgroundFlush(); });
  return Status::OK();
}

void DBImpl::BackgroundFlush() {
  MemTable* imm;
  {
    std::lock_guard<std::mutex> lock(mu_);
    imm = imm_;
  }
  if (imm == nullptr) return;
  PMBLADE_SYNC_POINT("DBImpl::BackgroundFlush:Start");

  const uint64_t flush_start = clock_->NowNanos();
  if (events_.active()) {
    events_.Emit(obs::Event(obs::EventType::kFlushBegin, flush_start)
                     .With("entries", static_cast<double>(imm->num_entries()))
                     .With("bytes", static_cast<double>(
                                        imm->ApproximateMemoryUsage())));
  }

  L0TableFactory* factory =
      l0_factory_ != nullptr ? l0_factory_.get() : l1_factory_.get();

  // Build per-partition level-0 tables WITHOUT the DB mutex: imm is frozen,
  // partition boundaries are immutable after Init, and the factory / PM
  // pool are internally synchronized. Readers and writers proceed.
  std::vector<std::pair<Partition*, L0TableRef>> built;
  std::unique_ptr<Iterator> it(imm->NewIterator());
  it->SeekToFirst();
  Status s;
  for (auto& partition : partitions_) {
    if (!it->Valid()) break;
    // Skip partitions before the iterator's position.
    if (!partition->end_key().empty() &&
        ExtractUserKey(it->key()).compare(
            Slice(partition->end_key())) >= 0) {
      continue;
    }
    BoundedIterator bounded(it.get(), partition->end_key());
    L0TableRef table;
    s = factory->BuildFrom(&bounded, &table);
    if (!s.ok()) break;
    if (table != nullptr) built.emplace_back(partition.get(), std::move(table));
  }
  if (s.ok()) s = it->status();
  it.reset();
  PMBLADE_SYNC_POINT("DBImpl::BackgroundFlush:BuiltTables");

  std::unique_lock<std::mutex> lock(mu_);
  if (s.ok()) {
    // Install under a short critical section: newest first per partition.
    std::vector<Partition*> touched;
    for (auto& entry : built) {
      entry.first->unsorted().insert(entry.first->unsorted().begin(),
                                     entry.second);
      touched.push_back(entry.first);
    }
    imm_->Unref();
    imm_ = nullptr;
    if (imm_ceiling_ > flushed_sequence_) flushed_sequence_ = imm_ceiling_;
    stats_.AddFlush();
    bg_flush_counter_->Inc();

    // The flushed memtable's logs are now redundant: advance the replay
    // floor, commit the manifest, then delete them.
    std::vector<uint64_t> flushed = std::move(imm_wals_);
    imm_wals_.clear();
    for (uint64_t number : flushed) {
      live_wals_.erase(
          std::remove(live_wals_.begin(), live_wals_.end(), number),
          live_wals_.end());
    }
    PMBLADE_SYNC_POINT("DBImpl::BackgroundFlush:Installed");
    s = PersistManifest();
    PMBLADE_SYNC_POINT("DBImpl::BackgroundFlush:ManifestCommitted");
    if (s.ok()) {
      for (uint64_t number : flushed) {
        const std::string path = WalFileName(dbname_, number);
        Status rs = env_->RemoveFile(path);
        if (!rs.ok() && env_->FileExists(path)) {
          // A WAL that survives its delete is re-replayed on the next open —
          // harmless for correctness (its data is already durable in L0 and
          // replay is idempotent) but it costs startup time and disk. Keep
          // retrying after future manifest commits instead of leaking it.
          PMBLADE_WARN(options_.logger, "failed to delete flushed wal %s: %s",
                       path.c_str(), rs.ToString().c_str());
          file_gc_fail_counter_->Inc();
          pending_file_gc_.push_back(path);
        }
      }
      PMBLADE_SYNC_POINT("DBImpl::BackgroundFlush:WalsDeleted");
      RetryPendingFileGcLocked();
    }
    if (events_.active()) {
      events_.Emit(
          obs::Event(obs::EventType::kFlushEnd, clock_->NowNanos())
              .With("tables", static_cast<double>(touched.size()))
              .With("duration_nanos",
                    static_cast<double>(clock_->NowNanos() - flush_start)));
    }
    if (s.ok()) {
      if (options_.background_compaction) {
        // The flush is committed and imm_ is clear: wake stalled writers
        // NOW. Algorithm 1 is handed to the scheduler below and must not
        // extend the stall (writers used to sleep through an entire major
        // compaction here).
        flush_done_cv_.notify_all();
        ScheduleCompactionCheck(touched);
      } else {
        // A/B benchmarking mode: historical inline behaviour. The work
        // still executes on the scheduler thread (single-compactor
        // invariant), but this flush thread blocks until it drains, holding
        // stalled writers down for the compaction's duration.
        ScheduleCompactionCheck(touched);
        lock.unlock();
        compaction_scheduler_->WaitIdle();
        lock.lock();
      }
    }
  } else {
    // Failed build: drop partial outputs. imm_ stays installed for reads
    // and its data remains recoverable from the still-live WALs.
    for (auto& entry : built) entry.second->Destroy();
  }
  if (!s.ok()) {
    bg_error_ = s;
    PMBLADE_WARN(options_.logger, "background flush failed: %s",
                 s.ToString().c_str());
  }
  flush_done_cv_.notify_all();
}

void DBImpl::RetryPendingFileGcLocked() {
  if (pending_file_gc_.empty()) return;
  std::vector<std::string> still_pending;
  for (const std::string& path : pending_file_gc_) {
    if (!env_->FileExists(path)) continue;  // a later attempt got it
    Status rs = env_->RemoveFile(path);
    if (!rs.ok() && env_->FileExists(path)) still_pending.push_back(path);
  }
  pending_file_gc_ = std::move(still_pending);
}

Status DBImpl::FlushMemTable() {
  // Rotate the memtable through the writer queue (a batch-less marker) so
  // WAL rotation stays leader-exclusive, then wait for the background
  // flush to commit.
  PMBLADE_RETURN_IF_ERROR(Write(WriteOptions(), nullptr));
  {
    std::unique_lock<std::mutex> lock(mu_);
    flush_done_cv_.wait(lock, [this] {
      return imm_ == nullptr || !bg_error_.ok();
    });
    PMBLADE_RETURN_IF_ERROR(bg_error_);
  }
  // Algorithm-1 work triggered by this flush runs on the compaction
  // scheduler; drain it so maintenance callers (tests, CompactToLevel1, the
  // crash model) observe the post-compaction state deterministically.
  // Bounded even when the env is dying: failed checks retry at most
  // compaction_retry_limit times, then the scheduler parks.
  compaction_scheduler_->WaitIdle();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compaction scheduling (Algorithm 1)
// ---------------------------------------------------------------------------

void DBImpl::ScheduleCompactionCheck(const std::vector<Partition*>& touched) {
  for (Partition* partition : touched) {
    MarkCompactionDirtyLocked(partition);
  }
  compaction_scheduler_->ScheduleCheck();
}

void DBImpl::MarkCompactionDirtyLocked(Partition* partition) {
  if (std::find(compaction_dirty_.begin(), compaction_dirty_.end(),
                partition) == compaction_dirty_.end()) {
    compaction_dirty_.push_back(partition);
  }
}

Status DBImpl::BackgroundCompactionCheck() {
  std::unique_lock<std::mutex> lock(mu_);
  // Claim phase: take the dirty partitions no concurrent check holds. A
  // partition another worker is compacting STAYS dirty — the holder's check
  // (or this one, below) hands it to a fresh check once claims release, so
  // dirtiness is never lost and two workers never share a partition.
  std::vector<Partition*> mine;
  {
    std::vector<Partition*> still_held;
    for (Partition* partition : compaction_dirty_) {
      if (compacting_.insert(partition).second) {
        mine.push_back(partition);
      } else {
        still_held.push_back(partition);
      }
    }
    compaction_dirty_ = std::move(still_held);
  }
#ifdef PMBLADE_SYNC_POINTS
  {
    std::vector<uint64_t> claimed_ids;
    for (Partition* partition : mine) claimed_ids.push_back(partition->id());
    PMBLADE_SYNC_POINT_ARG("DBImpl::CompactionCheck:Claimed", &claimed_ids);
  }
#endif
  Status s = RunCompactionsLocked(lock, mine);
  for (Partition* partition : mine) compacting_.erase(partition);
  if (!s.ok()) {
    // Re-arm the dirty set so the scheduler's retry (or the next
    // flush-triggered check) re-evaluates the same partitions.
    for (Partition* partition : mine) MarkCompactionDirtyLocked(partition);
  }
  // Flushes may have re-dirtied partitions this check was holding (a fresh
  // check skipped them as claimed). Only a check that owned claims
  // re-schedules — a check that claimed nothing must not, or two no-op
  // checks would ping-pong the queue while the holder works.
  if (!mine.empty() && !compaction_dirty_.empty() && s.ok()) {
    compaction_scheduler_->ScheduleCheck();
  }
  return s;
}

Status DBImpl::RunCompactionsLocked(std::unique_lock<std::mutex>& lock,
                                    const std::vector<Partition*>& touched) {
  // First failure seen; siblings keep compacting (isolation: one poisoned
  // partition must not block progress elsewhere in the same check).
  Status first_error;
  if (options_.enable_cost_model) {
    if (options_.enable_internal_compaction) {
      for (Partition* partition : touched) {
        PartitionCounters counters = partition->Counters();
        CostDecision decision = cost_model_->EvaluateInternal(counters);
        decision_counter_->Inc();
        if (decision.eq1_triggered) eq1_trigger_counter_->Inc();
        if (decision.eq2_triggered) eq2_trigger_counter_->Inc();
        if (events_.active()) {
          // Every evaluation is recorded — negative verdicts explain why a
          // partition was NOT compacted, which matters as much as the
          // positives when debugging the policy.
          events_.Emit(
              obs::Event(obs::EventType::kInternalDecision,
                         clock_->NowNanos())
                  .With("partition", static_cast<double>(counters.partition_id))
                  .With("n_r_hat", counters.reads_per_sec)
                  .With("n_unsorted",
                        static_cast<double>(counters.unsorted_tables))
                  .With("n_w", static_cast<double>(counters.writes))
                  .With("n_u", static_cast<double>(counters.updates))
                  .With("size_bytes", static_cast<double>(counters.size_bytes))
                  .With("eq1_benefit_rate", decision.eq1_benefit_rate)
                  .With("eq1_cost_rate", decision.eq1_cost_rate)
                  .With("eq2_ssd_savings", decision.eq2_ssd_savings)
                  .With("eq2_pm_cost", decision.eq2_pm_cost)
                  .With("eq1", decision.eq1_triggered ? 1 : 0)
                  .With("eq2", decision.eq2_triggered ? 1 : 0));
        }
        if (decision.triggered()) {
          Status is = RunInternalCompactionOnPartition(lock, partition);
          if (!is.ok()) {
            if (!bg_error_.ok()) return is;  // manifest loss: stop the check
            if (first_error.ok()) first_error = is;
          }
        }
      }
    }

    // ---- SSD side: the picker decides what/when/where ----
    // Round 0 is the EVICTION check (the Eq. 3 gate + keep-set, evaluated
    // exactly once per check); later rounds drain the policy's shape
    // MAINTENANCE jobs (tiered/lazy run-block merges — leveled never emits
    // any). The round cap bounds a cascade: each round installs at most one
    // job per partition, and a tiered merge cascade over L levels settles in
    // <= L rounds, so 10 covers max_ssd_levels' whole range with slack.
    std::set<Partition*> ours(touched.begin(), touched.end());
    constexpr int kMaxPolicyRounds = 10;
    for (int round = 0; round < kMaxPolicyRounds; ++round) {
      PickContext ctx = BuildPickContextLocked(ours);
      std::vector<CompactionJob> jobs;
      if (round == 0) {
        EvictionPick pick = picker_->PickEviction(ctx);
        if (pick.evaluated) {
          keep_set_counter_->Inc();
          if (events_.active()) {
            std::vector<PartitionCounters> all;
            all.reserve(ctx.partitions.size());
            for (const PartitionView& view : ctx.partitions) {
              all.push_back(view.counters);
            }
            EmitKeepSetEvent(all, pick.keep, pick.tau_t, ctx.total_l0_bytes);
          }
        }
        jobs = std::move(pick.jobs);
        // A failed internal compaction still evaluates the gate (counter +
        // event, as always) but must not start eviction work.
        if (!first_error.ok()) jobs.clear();
      }
      if (jobs.empty()) {
        if (!first_error.ok()) break;
        jobs = picker_->PickMaintenance(ctx);
      }
      if (jobs.empty()) break;

      // Claim job partitions this check does not already hold, so
      // concurrent checks stay off them for the whole merge + install.
      std::vector<MajorJob> major_jobs;
      std::vector<Partition*> extra_claims;
      for (const CompactionJob& job : jobs) {
        Partition* partition = partitions_[job.partition_index].get();
        if (ours.count(partition) == 0) {
          if (!compacting_.insert(partition).second) continue;  // held
          extra_claims.push_back(partition);
        }
        MajorJob mj;
        mj.partition = partition;
        mj.include_l0 = job.include_l0;
        mj.run_begin = job.run_begin;
        mj.run_end = job.run_end;
        mj.output_level = job.output_level;
        major_jobs.push_back(mj);
      }
      Status ms;
      if (!major_jobs.empty()) {
        ms = RunMajorCompactionOnJobs(lock, major_jobs);
      }
      for (Partition* partition : extra_claims) {
        compacting_.erase(partition);
        // An extra victim was not in this check's dirty claim, so a failure
        // would not be re-armed by the caller — mark it dirty here so the
        // retry re-selects it.
        if (!ms.ok()) MarkCompactionDirtyLocked(partition);
      }
      if (!ms.ok()) {
        if (first_error.ok()) first_error = ms;
        break;
      }
    }
    return first_error;
  }

  // Conventional policy (PMBlade-PM): when any partition accumulates
  // l0_table_trigger level-0 tables, compact the ENTIRE level-0 down.
  bool due = false;
  for (const auto& partition : partitions_) {
    if (partition->unsorted().size() + partition->sorted_run().size() >=
        options_.l0_table_trigger) {
      due = true;
      break;
    }
  }
  if (pool_->FreeBytes() < pool_->capacity() / 8 &&
      options_.l0_layout != L0Layout::kSstable) {
    due = true;
  }
  if (due) {
    std::set<Partition*> ours(touched.begin(), touched.end());
    std::vector<Partition*> victims;
    std::vector<Partition*> extra_claims;
    for (const auto& partition : partitions_) {
      Partition* p = partition.get();
      if (p->L0Bytes() == 0) continue;
      if (ours.count(p) == 0) {
        if (!compacting_.insert(p).second) continue;  // held by a sibling
        extra_claims.push_back(p);
      }
      victims.push_back(p);
    }
    if (!victims.empty()) {
      std::vector<MajorJob> jobs;
      jobs.reserve(victims.size());
      for (Partition* p : victims) jobs.push_back(FullCollapseJob(p));
      first_error = RunMajorCompactionOnJobs(lock, jobs);
    }
    for (Partition* p : extra_claims) {
      compacting_.erase(p);
      if (!first_error.ok()) MarkCompactionDirtyLocked(p);
    }
  }
  return first_error;
}

void DBImpl::EmitKeepSetEvent(const std::vector<PartitionCounters>& all,
                              const std::set<size_t>& keep, uint64_t tau_t,
                              uint64_t total_l0_bytes) {
  // Per-partition Eq. 3 scores ride in the detail payload (variable size).
  std::string detail = "[";
  char buf[160];
  for (size_t i = 0; i < all.size(); ++i) {
    const PartitionCounters& c = all[i];
    double score = c.size_bytes > 0 ? static_cast<double>(c.reads) /
                                          static_cast<double>(c.size_bytes)
                                    : 0.0;
    snprintf(buf, sizeof(buf),
             "%s{\"partition\":%llu,\"reads\":%llu,\"size_bytes\":%llu,"
             "\"score\":%.17g,\"kept\":%s}",
             i == 0 ? "" : ",", static_cast<unsigned long long>(c.partition_id),
             static_cast<unsigned long long>(c.reads),
             static_cast<unsigned long long>(c.size_bytes), score,
             keep.count(i) != 0 ? "true" : "false");
    detail += buf;
  }
  detail += "]";
  events_.Emit(
      obs::Event(obs::EventType::kKeepSetSelected, clock_->NowNanos())
          .With("partitions", static_cast<double>(all.size()))
          .With("kept", static_cast<double>(keep.size()))
          .With("tau_t", static_cast<double>(
                             tau_t != 0 ? tau_t : options_.cost.tau_t))
          .With("total_l0_bytes", static_cast<double>(total_l0_bytes))
          .WithDetail(std::move(detail)));
}

Status DBImpl::RunInternalCompactionOnPartition(
    std::unique_lock<std::mutex>& lock, Partition* partition) {
  if (partition->unsorted().empty() && partition->sorted_run().size() <= 1) {
    return Status::OK();
  }
  // Snapshot the inputs under mu_. Only this (scheduler) thread ever
  // removes tables from the partition, so the snapshot stays a suffix of
  // unsorted() while the merge runs; flushes may prepend newer tables.
  std::vector<L0TableRef> snap_unsorted = partition->unsorted();
  std::vector<L0TableRef> snap_sorted = partition->sorted_run();
  std::vector<L0TableRef> inputs = snap_unsorted;  // newest first
  for (const auto& table : snap_sorted) inputs.push_back(table);

  L0TableFactory* factory =
      l0_factory_ != nullptr ? l0_factory_.get() : l1_factory_.get();

  InternalCompactionOptions copts;
  copts.target_table_bytes = options_.internal_table_target_bytes;
  // ssd_runs is only mutated by this thread, so the verdict stays valid
  // while the lock is released below.
  copts.drop_tombstones = partition->ssd_runs().empty();
  copts.oldest_snapshot = OldestLiveSnapshot();
  copts.clock = clock_;
  copts.event_bus = &events_;
  copts.partition_id = partition->id();

  // The merge runs without mu_: readers and the write pipeline proceed.
  lock.unlock();
  std::vector<L0TableRef> outputs;
  InternalCompactionStats cstats;
  Status s =
      RunInternalCompaction(copts, icmp_, inputs, factory, &outputs, &cstats);
  PMBLADE_SYNC_POINT("DBImpl::InternalCompaction:Outputs");
  if (!s.ok()) {
    // Retryable: drop any tables built before the failure so PM is not
    // leaked, mutate nothing.
    for (auto& table : outputs) table->Destroy();
    lock.lock();
    return s;
  }
  lock.lock();

  // Install under mu_: remove exactly the snapshotted tables (newer flushed
  // tables at the front of unsorted() stay, correctly ordered above the
  // merged run).
  Partition::RemoveTables(&partition->unsorted(), snap_unsorted);
  partition->sorted_run() = std::move(outputs);
  partition->ResetCounters();
  stats_.AddInternalCompaction(cstats.input_bytes, cstats.output_bytes);

  s = PersistManifest();
  if (!s.ok()) {
    // The new run is already installed in memory; a manifest that cannot be
    // written is a stop-the-world condition (same class as a flush-side
    // manifest failure), not a retryable compaction error.
    bg_error_ = s;
    return s;
  }
  PMBLADE_SYNC_POINT("DBImpl::InternalCompaction:AfterManifest");
  for (auto& table : snap_unsorted) table->Destroy();
  for (auto& table : snap_sorted) table->Destroy();

  PMBLADE_INFO(options_.logger,
               "internal compaction p%llu: %llu->%llu tables, released %lld B",
               static_cast<unsigned long long>(partition->id()),
               static_cast<unsigned long long>(cstats.input_tables),
               static_cast<unsigned long long>(cstats.output_tables),
               static_cast<long long>(cstats.bytes_released()));
  return Status::OK();
}

DBImpl::MajorJob DBImpl::FullCollapseJob(Partition* partition) {
  MajorJob job;
  job.partition = partition;
  job.include_l0 = true;
  job.run_begin = 0;
  job.run_end = partition->ssd_runs().size();
  job.output_level = 1;
  return job;
}

PickContext DBImpl::BuildPickContextLocked(const std::set<Partition*>& ours) {
  PickContext ctx;
  ctx.partitions.reserve(partitions_.size());
  for (const auto& up : partitions_) {
    Partition* partition = up.get();
    PartitionView view;
    view.counters = partition->Counters();
    view.l0_bytes = partition->L0Bytes();
    view.runs.reserve(partition->ssd_runs().size());
    for (const SsdRun& run : partition->ssd_runs()) {
      PartitionView::RunView rv;
      rv.level = run.level;
      rv.bytes = run.bytes();
      view.runs.push_back(rv);
    }
    // Claimable for job purposes: held by THIS check already, or unclaimed.
    view.claimable =
        ours.count(partition) != 0 || compacting_.count(partition) == 0;
    ctx.total_l0_bytes += view.l0_bytes;
    ctx.recent_reads += view.counters.reads;
    ctx.recent_writes += view.counters.writes;
    ctx.partitions.push_back(std::move(view));
  }
  // PM-pressure backstop: the Eq. 3 gate also fires when the pool runs
  // short (irrelevant for the SSD-resident kSstable layout).
  ctx.pool_pressure = pool_->FreeBytes() < pool_->capacity() / 8 &&
                      options_.l0_layout != L0Layout::kSstable;
  return ctx;
}

Status DBImpl::RunMajorCompactionOnJobs(std::unique_lock<std::mutex>& lock,
                                        const std::vector<MajorJob>& jobs) {
  // Snapshot every job's table sets under mu_ (both for the merge inputs
  // and for the identity-based install below — tables flushed during the
  // merge must survive it). Run indices stay valid while mu_ is released:
  // the caller holds each job partition's claim, only the claim holder
  // mutates ssd_runs(), and flushes never touch the stack.
  struct JobSnapshot {
    std::vector<L0TableRef> unsorted;                // include_l0 jobs only
    std::vector<L0TableRef> sorted;                  // include_l0 jobs only
    std::vector<std::vector<L0TableRef>> runs;       // [run_begin, run_end)
    bool drop_tombstones = false;
  };
  std::vector<JobSnapshot> snaps;
  snaps.reserve(jobs.size());
  std::vector<CompactionSubtaskInput> subtasks;
  /// subtasks[i] merges one key-range slice of job subtask_job[i]; slices
  /// of a job occupy consecutive subtask indices in ascending key order,
  /// which is what lets the install below stitch them back into one sorted
  /// output run by simple concatenation.
  std::vector<size_t> subtask_job;
  const size_t max_slices =
      static_cast<size_t>(std::max(options_.max_subcompactions, 1));
  for (size_t j = 0; j < jobs.size(); ++j) {
    const MajorJob& job = jobs[j];
    Partition* partition = job.partition;
    JobSnapshot snap;
    if (job.include_l0) {
      snap.unsorted = partition->unsorted();
      snap.sorted = partition->sorted_run();
    }
    const std::vector<SsdRun>& stack = partition->ssd_runs();
    const size_t run_end = std::min(job.run_end, stack.size());
    for (size_t r = job.run_begin; r < run_end; ++r) {
      snap.runs.push_back(stack[r].tables);
    }
    // Tombstones may drop only when the job's inputs reach the oldest run
    // (its output becomes the new bottom of this partition's stack). A
    // run-stacking eviction (run_end == run_begin == 0 over a non-empty
    // stack) or an upper-level block merge keeps them: older runs below may
    // still hold shadowed versions of the deleted keys.
    snap.drop_tombstones = run_end >= stack.size();

    uint64_t pm_bytes = 0;
    if (job.include_l0) pm_bytes = partition->L0Bytes();
    uint64_t ssd_bytes = 0;
    for (const auto& run : snap.runs) {
      for (const auto& table : run) ssd_bytes += table->size_bytes();
    }
    double ssd_fraction =
        (pm_bytes + ssd_bytes) > 0
            ? static_cast<double>(ssd_bytes) / (pm_bytes + ssd_bytes)
            : 0.0;
    if (options_.l0_layout == L0Layout::kSstable) ssd_fraction = 1.0;

    // Subcompaction split rule: slice the job at the table boundaries of
    // its largest sorted component (the oldest input run when one exists,
    // else the sorted run) — every table's smallest user key is a candidate
    // bound, and up to max_subcompactions-1 evenly spaced candidates are
    // kept. Bounds compare user keys, so all versions of a key share a
    // slice.
    std::vector<std::string> bounds;
    const std::vector<L0TableRef>& base_run =
        !snap.runs.empty() ? snap.runs.back() : snap.sorted;
    if (max_slices > 1 && base_run.size() > 1) {
      const size_t k = base_run.size();
      const size_t want = std::min(max_slices - 1, k - 1);
      std::set<size_t> cuts;  // positions in [1, k-1]: cut before table pos
      for (size_t jj = 1; jj <= want; ++jj) {
        size_t pos = jj * k / (want + 1);
        cuts.insert(std::max<size_t>(1, std::min(pos, k - 1)));
      }
      for (size_t pos : cuts) {
        bounds.push_back(ExtractUserKey(base_run[pos]->smallest()).ToString());
      }
    }

    // Capture the table sets by value so iterators outlive version edits.
    std::vector<L0TableRef> unsorted = snap.unsorted;
    std::vector<L0TableRef> sorted = snap.sorted;
    std::vector<std::vector<L0TableRef>> runs = snap.runs;
    const bool include_l0 = job.include_l0;
    const InternalKeyComparator* icmp = &icmp_;
    const size_t num_slices = bounds.size() + 1;
    for (size_t slice = 0; slice < num_slices; ++slice) {
      std::string lo = slice == 0 ? std::string() : bounds[slice - 1];
      std::string hi = slice + 1 == num_slices ? std::string() : bounds[slice];
      CompactionSubtaskInput sub;
      sub.ssd_input_fraction = ssd_fraction;
      sub.drop_tombstones = snap.drop_tombstones ? 1 : 0;
      sub.make_input = [unsorted, sorted, runs, include_l0, icmp, lo,
                        hi]() -> Iterator* {
        // Child order is irrelevant for correctness (the merge resolves
        // duplicates by sequence number); newest-first mirrors the read
        // path.
        std::vector<Iterator*> children;
        if (include_l0) {
          for (const auto& table : unsorted) {
            children.push_back(table->NewIterator());
          }
          children.push_back(NewRunIterator(icmp, sorted));
        }
        for (const auto& run : runs) {
          children.push_back(NewRunIterator(icmp, run));
        }
        Iterator* merged = NewMergingIterator(icmp, std::move(children));
        if (lo.empty() && hi.empty()) {
          merged->SeekToFirst();
          return merged;
        }
        Iterator* clipped = new RangeClippedIterator(merged, lo, hi);
        clipped->SeekToFirst();
        return clipped;
      };
      subtasks.push_back(std::move(sub));
      subtask_job.push_back(j);
    }
    snaps.push_back(std::move(snap));
  }

  MajorCompactionOptions mopts = options_.major;
  mopts.oldest_snapshot = OldestLiveSnapshot();
  // Per-subtask verdicts above override this; one Run may mix bottom jobs
  // (full collapses) with non-bottom ones (run stacking, block merges).
  mopts.drop_tombstones = true;
  mopts.clock = clock_;
  MajorCompactor compactor(raw_env_, model_, l1_factory_.get(), mopts);

  // Merge + all simulated-SSD I/O without mu_.
  lock.unlock();
#ifdef PMBLADE_SYNC_POINTS
  {
    // Fired OUTSIDE mu_ so crash/overlap tests may block here without
    // stalling readers, writers or sibling compaction workers.
    std::vector<uint64_t> victim_ids;
    victim_ids.reserve(jobs.size());
    for (const MajorJob& job : jobs) victim_ids.push_back(job.partition->id());
    PMBLADE_SYNC_POINT_ARG("DBImpl::MajorCompaction:BeforeRun", &victim_ids);
  }
#endif
  std::vector<CompactionOutputMeta> outputs;
  MajorCompactionStats mstats;
  Status s = compactor.Run(subtasks, &outputs, &mstats);
  if (s.ok()) {
    if (subcompaction_counter_ != nullptr) {
      subcompaction_counter_->Inc(subtasks.size());
    }
    if (major_wall_nanos_counter_ != nullptr) {
      major_wall_nanos_counter_->Inc(mstats.wall_nanos);
    }
  }
  PMBLADE_SYNC_POINT("DBImpl::MajorCompaction:AfterRun");

  // Open ALL outputs before touching any victim: either every table is
  // ready to install or nothing is mutated. (Opening one victim at a time
  // used to leave earlier victims half-installed — and their doomed tables
  // leaked — when an Open failed at victim v>0, and a later flush's
  // manifest commit would persist the mixed state.)
  TableReaderOptions ropts;
  ropts.comparator = &icmp_;
  ropts.filter_policy = filter_policy_.get();
  ropts.block_cache = block_cache_;

  // One slot per subtask: empty slices produce no output and leave their
  // slot null. Stitching below walks slots in subtask order, which is
  // ascending key order within each job.
  std::vector<L0TableRef> slice_tables(subtasks.size());
  size_t opened = 0;
  while (s.ok() && opened < outputs.size()) {
    const CompactionOutputMeta& meta = outputs[opened];
    TableReaderOptions opts = ropts;
    opts.file_number = meta.file_number;
    std::shared_ptr<SsdL0Table> table;
    s = SsdL0Table::Open(env_, meta.path, meta.file_number, opts, &table);
    if (!s.ok()) break;  // `opened` must not count this file: it still
                         // needs the RemoveFile below, not a Destroy
    slice_tables[meta.subtask_index] = std::move(table);
    ++opened;
  }
  if (!s.ok()) {
    // Nothing was installed; delete the compaction's output files so a
    // failed run leaves no orphans (opened tables drop theirs via Destroy
    // at last ref, unopened ones are removed directly), and report a
    // retryable failure.
    for (auto& table : slice_tables) {
      if (table != nullptr) table->Destroy();
    }
    for (size_t i = opened; i < outputs.size(); ++i) {
      raw_env_->RemoveFile(outputs[i].path);
    }
    lock.lock();
    return s;
  }

  // Stitch: concatenate each job's slice outputs (already disjoint and
  // ascending) back into one output run, then install everything under a
  // single mu_ hold + manifest commit below.
  std::vector<std::vector<L0TableRef>> new_runs(jobs.size());
  for (size_t i = 0; i < slice_tables.size(); ++i) {
    if (slice_tables[i] != nullptr) {
      new_runs[subtask_job[i]].push_back(std::move(slice_tables[i]));
    }
  }
  PMBLADE_SYNC_POINT("DBImpl::MajorCompaction:OutputsOpened");
  lock.lock();

  // Install ALL jobs atomically under one mu_ hold + one manifest commit.
  // Remove exactly the snapshotted tables; anything flushed into a
  // partition while the merge ran stays in unsorted(), above the new run.
  // The input run block [run_begin, run_end) is replaced in place by the
  // output run, preserving the stack's newest-first recency order and its
  // non-decreasing level tags.
  std::vector<L0TableRef> doomed;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const MajorJob& job = jobs[j];
    Partition* partition = job.partition;
    const JobSnapshot& snap = snaps[j];
    for (auto& t : snap.unsorted) doomed.push_back(t);
    for (auto& t : snap.sorted) doomed.push_back(t);
    for (const auto& run : snap.runs) {
      for (auto& t : run) doomed.push_back(t);
    }
    if (job.include_l0) {
      Partition::RemoveTables(&partition->unsorted(), snap.unsorted);
      Partition::RemoveTables(&partition->sorted_run(), snap.sorted);
    }
    std::vector<SsdRun>& stack = partition->ssd_runs();
    const size_t erase_end = std::min(job.run_end, stack.size());
    stack.erase(stack.begin() + static_cast<ptrdiff_t>(job.run_begin),
                stack.begin() + static_cast<ptrdiff_t>(erase_end));
    if (!new_runs[j].empty()) {
      SsdRun out;
      out.level = job.output_level;
      out.tables = std::move(new_runs[j]);
      stack.insert(stack.begin() + static_cast<ptrdiff_t>(job.run_begin),
                   std::move(out));
    }
    // Counters feed the Eq. 1/2/3 decisions about PM level-0; a pure
    // shape-maintenance merge does not consume L0, so it keeps them.
    if (job.include_l0) partition->ResetCounters();
  }
  stats_.AddMajorCompaction(mstats.ssd_bytes_written);

  s = PersistManifest();
  if (!s.ok()) {
    // Installed state that cannot reach the manifest: stop-the-world, same
    // class as a flush-side manifest failure.
    bg_error_ = s;
    return s;
  }
  PMBLADE_SYNC_POINT("DBImpl::MajorCompaction:AfterManifest");
  for (auto& table : doomed) table->Destroy();

  PMBLADE_INFO(options_.logger,
               "major compaction (%s): %zu jobs in %zu slices, %llu records "
               "in, %llu out",
               picker_->name(), jobs.size(), subtasks.size(),
               static_cast<unsigned long long>(mstats.input_records),
               static_cast<unsigned long long>(mstats.output_records));
  return Status::OK();
}

Status DBImpl::CompactLevel0() {
  // Serialize with background checks on the scheduler thread — the only
  // thread allowed to mutate sorted runs (see partition.h).
  return compaction_scheduler_->RunExclusive([this] {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& partition : partitions_) {
      PMBLADE_RETURN_IF_ERROR(
          RunInternalCompactionOnPartition(lock, partition.get()));
    }
    return Status::OK();
  });
}

Status DBImpl::CompactToLevel1(bool respect_cost_model) {
  // Drain the memtable through the normal (queued, background) flush path
  // first; FlushMemTable also drains the scheduler, so the victim selection
  // below sees post-compaction state.
  PMBLADE_RETURN_IF_ERROR(FlushMemTable());
  return compaction_scheduler_->RunExclusive([this, respect_cost_model] {
    std::unique_lock<std::mutex> lock(mu_);
    std::set<size_t> keep;
    if (respect_cost_model && options_.enable_cost_model) {
      std::vector<PartitionCounters> all;
      uint64_t total_l0 = 0;
      for (const auto& partition : partitions_) {
        all.push_back(partition->Counters());
        total_l0 += partition->L0Bytes();
      }
      std::vector<size_t> retained = cost_model_->SelectRetained(all);
      keep.insert(retained.begin(), retained.end());
      keep_set_counter_->Inc();
      if (events_.active()) {
        EmitKeepSetEvent(all, keep, /*tau_t=*/0, total_l0);
      }
    }
    std::vector<MajorJob> jobs;
    for (size_t i = 0; i < partitions_.size(); ++i) {
      Partition* partition = partitions_[i].get();
      if (keep.count(i) != 0) continue;
      // Worth collapsing when level-0 holds data, or the SSD stack is not
      // already one level-1 run (a tiered/lazy shape this manual "compact
      // everything to level 1" API promises to flatten). For leveled-built
      // data this reduces to the historical L0Bytes() > 0 filter.
      const std::vector<SsdRun>& stack = partition->ssd_runs();
      bool flat = stack.size() == 1 && stack[0].level == 1;
      if (partition->L0Bytes() == 0 && (stack.empty() || flat)) continue;
      jobs.push_back(FullCollapseJob(partition));
    }
    if (jobs.empty()) return Status::OK();
    return RunMajorCompactionOnJobs(lock, jobs);
  });
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Partition* DBImpl::FindPartition(const Slice& user_key) {
  // Partitions are sorted by range; binary search on end keys.
  size_t lo = 0, hi = partitions_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    const std::string& end = partitions_[mid]->end_key();
    if (!end.empty() && user_key.compare(Slice(end)) >= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < partitions_.size() ? partitions_[lo].get() : nullptr;
}

SequenceNumber DBImpl::OldestLiveSnapshot() const {
  if (live_snapshots_.empty()) return kMaxSequenceNumber;
  return *live_snapshots_.begin();
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  const uint64_t start = clock_->NowNanos();

  MemTable* mem = nullptr;
  MemTable* imm = nullptr;
  SequenceNumber snapshot;
  std::vector<L0TableRef> unsorted;
  std::vector<L0TableRef> sorted;
  std::vector<std::vector<L0TableRef>> ssd_runs;  // newest first
  {
    // Brief version grab: ref the memtables and copy the table refs, then
    // probe everything lock-free. A flush or group commit in flight never
    // blocks a reader past this block.
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = options.snapshot != 0 ? options.snapshot : last_sequence_;
    mem = mem_;
    mem->Ref();
    if (imm_ != nullptr) {
      imm = imm_;
      imm->Ref();
    }
    Partition* partition = FindPartition(key);
    if (partition != nullptr) {
      partition->NoteRead();
      unsorted = partition->unsorted();
      sorted = partition->sorted_run();
      ssd_runs.reserve(partition->ssd_runs().size());
      for (const SsdRun& run : partition->ssd_runs()) {
        ssd_runs.push_back(run.tables);
      }
    }
  }

  LookupKey lkey(key, snapshot);
  Status result = Status::NotFound();
  ReadSource source = ReadSource::kNotFound;
  bool answered = false;

  std::string local_value;
  Status probe_status;
  ReadProbeStats probe;
  if (mem->Get(lkey, &local_value, &probe_status)) {
    answered = true;
    source = ReadSource::kMemtable;
    result = probe_status;
  }
  if (!answered && imm != nullptr &&
      imm->Get(lkey, &local_value, &probe_status)) {
    answered = true;
    source = ReadSource::kMemtable;
    result = probe_status;
  }
  // SSD-resident probes register as one client op each for the live q_cli
  // gauge; PM-resident level-0 probes never touch the SSD queue.
  const bool ssd_l0 =
      track_client_io_ && options_.l0_layout == L0Layout::kSstable;
  if (!answered) {
    ScopedExternalIo io(ssd_l0 ? model_ : nullptr, IoClass::kClient);
    for (const auto& table : unsorted) {
      bool found = false;
      Status s = L0TableGet(*table, icmp_, lkey, &local_value, &found,
                            &probe_status, &probe);
      if (!s.ok()) {
        mem->Unref();
        if (imm != nullptr) imm->Unref();
        return s;
      }
      if (found) {
        answered = true;
        source = ReadSource::kPmLevel0;
        result = probe_status;
        break;
      }
    }
  }
  if (!answered && !sorted.empty()) {
    ScopedExternalIo io(ssd_l0 ? model_ : nullptr, IoClass::kClient);
    bool found = false;
    Status s = RunGet(sorted, icmp_, lkey, &local_value, &found,
                      &probe_status, &probe);
    if (!s.ok()) {
      mem->Unref();
      if (imm != nullptr) imm->Unref();
      return s;
    }
    if (found) {
      answered = true;
      source = ReadSource::kPmLevel0;
      result = probe_status;
    }
  }
  if (!answered && !ssd_runs.empty()) {
    // SSD runs always live on the SSD; probe newest-first — the first run
    // holding any version of the key is authoritative.
    ScopedExternalIo io(track_client_io_ ? model_ : nullptr, IoClass::kClient);
    for (const auto& run : ssd_runs) {
      bool found = false;
      Status s = RunGet(run, icmp_, lkey, &local_value, &found, &probe_status,
                        &probe);
      if (!s.ok()) {
        mem->Unref();
        if (imm != nullptr) imm->Unref();
        return s;
      }
      if (found) {
        answered = true;
        source = ReadSource::kSsdLevel1;
        result = probe_status;
        break;
      }
    }
  }

  mem->Unref();
  if (imm != nullptr) imm->Unref();

  if (answered && result.ok()) {
    value->swap(local_value);
  } else if (!answered) {
    result = Status::NotFound();
    source = ReadSource::kNotFound;
  } else {
    source = ReadSource::kNotFound;  // tombstone
  }
  if (probe.bloom_checks > 0) {
    bloom_check_counter_->Inc(probe.bloom_checks);
    if (probe.bloom_negatives > 0) {
      bloom_negative_counter_->Inc(probe.bloom_negatives);
    }
    if (probe.bloom_false_positives > 0) {
      bloom_fp_counter_->Inc(probe.bloom_false_positives);
    }
  }
  stats_.RecordRead(source, clock_->NowNanos() - start);
  return result;
}

std::vector<Iterator*> DBImpl::CollectInternalIterators() {
  // Caller holds mu_. Partitions are range-disjoint, so their tables go
  // behind one lazy concatenating iterator: a scan pays for the partition
  // under its cursor, not the whole database.
  std::vector<Iterator*> children;
  children.push_back(mem_->NewIterator());
  if (imm_ != nullptr) children.push_back(imm_->NewIterator());
  std::vector<PartitionSnapshot> parts;
  parts.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    PartitionSnapshot snap;
    snap.begin_key = partition->begin_key();
    snap.end_key = partition->end_key();
    snap.unsorted = partition->unsorted();
    snap.sorted_run = partition->sorted_run();
    snap.ssd_runs.reserve(partition->ssd_runs().size());
    for (const SsdRun& run : partition->ssd_runs()) {
      snap.ssd_runs.push_back(run.tables);
    }
    parts.push_back(std::move(snap));
  }
  children.push_back(NewPartitionConcatIterator(&icmp_, std::move(parts)));
  return children;
}

uint64_t DBImpl::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  live_snapshots_.insert(last_sequence_);
  return last_sequence_;
}

void DBImpl::ReleaseSnapshot(uint64_t snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_snapshots_.find(snapshot);
  if (it != live_snapshots_.end()) live_snapshots_.erase(it);
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

WritePressure DBImpl::GetWritePressure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) return WritePressure::kStall;
  if (imm_ == nullptr) return WritePressure::kNone;
  // A flush is in flight: grade by how full the active memtable is, the
  // same thresholds MakeRoomForWrite applies (slowdown at the watermark,
  // hard stall when full).
  const size_t usage = mem_->ApproximateMemoryUsage();
  const size_t limit = memtable_limit_.load(std::memory_order_relaxed);
  if (usage >= limit) return WritePressure::kStall;
  if (usage >=
      static_cast<size_t>(limit * options_.write_slowdown_watermark)) {
    return WritePressure::kSlowdown;
  }
  return WritePressure::kNone;
}

void DBImpl::SetDynamicTauT(uint64_t bytes) {
  // 0 reads as "unset" to base_tau_t(); keep the target positive.
  cost_model_->set_dynamic_tau_t(std::max<uint64_t>(bytes, 1));
}

bool DBImpl::GetProperty(const std::string& property, uint64_t* value) {
  if (property == "pmblade.write-pressure") {
    *value = static_cast<uint64_t>(GetWritePressure());
    return true;
  }
  // Counter-backed properties first: they are atomic and need no lock.
  if (property == "pmblade.wal-syncs") {
    *value = wal_sync_counter_->Value();
    return true;
  }
  if (property == "pmblade.write-groups") {
    *value = group_counter_->Value();
    return true;
  }
  if (property == "pmblade.write-group-writes") {
    *value = group_write_counter_->Value();
    return true;
  }
  if (property == "pmblade.write-slowdowns") {
    *value = slowdown_counter_->Value();
    return true;
  }
  if (property == "pmblade.write-stalls") {
    *value = stall_counter_->Value();
    return true;
  }
  if (property == "pmblade.write-stall-nanos") {
    *value = stall_nanos_counter_->Value();
    return true;
  }
  if (property == "pmblade.bg-flushes") {
    *value = bg_flush_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-prepared") {
    *value = txn_prepared_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-committed") {
    *value = txn_committed_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-rolled-back") {
    *value = txn_rolled_back_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-pending") {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t pending = 0;
    for (const auto& entry : txns_) {
      if (!entry.second.committed) ++pending;
    }
    *value = pending;
    return true;
  }
  if (property == "pmblade.txn-retained") {
    std::lock_guard<std::mutex> lock(mu_);
    *value = txns_.size() + replay_committed_.size() +
             replay_rolled_back_.size();
    return true;
  }
  if (property == "pmblade.open-snapshots") {
    std::lock_guard<std::mutex> lock(mu_);
    *value = live_snapshots_.size();
    return true;
  }
  if (property == "pmblade.compactions-completed") {
    *value = compaction_scheduler_->checks_completed();
    return true;
  }
  if (property == "pmblade.compactions-failed") {
    *value = compaction_scheduler_->checks_failed();
    return true;
  }
  if (property == "pmblade.compaction-retries") {
    *value = compaction_scheduler_->retries();
    return true;
  }
  if (property == "pmblade.compaction-queue-depth") {
    *value = compaction_scheduler_->QueueDepth();
    return true;
  }
  if (property == "pmblade.compaction-workers") {
    *value = static_cast<uint64_t>(compaction_scheduler_->workers());
    return true;
  }
  if (property == "pmblade.compaction-active") {
    *value = static_cast<uint64_t>(compaction_scheduler_->active());
    return true;
  }
  if (property == "pmblade.compaction-subcompactions") {
    *value = subcompaction_counter_->Value();
    return true;
  }
  if (property == "pmblade.compaction-major-wall-nanos") {
    *value = major_wall_nanos_counter_->Value();
    return true;
  }
  if (property == "pmblade.file-gc-failures") {
    *value = file_gc_fail_counter_->Value();
    return true;
  }
  if (property == "pmblade.bloom-checks") {
    *value = bloom_check_counter_->Value();
    return true;
  }
  if (property == "pmblade.bloom-negatives") {
    *value = bloom_negative_counter_->Value();
    return true;
  }
  if (property == "pmblade.bloom-false-positives") {
    *value = bloom_fp_counter_->Value();
    return true;
  }
  if (property == "pmblade.blockcache-charge") {
    *value = block_cache_ != nullptr ? block_cache_->TotalCharge() : 0;
    return true;
  }
  if (property == "pmblade.blockcache-capacity") {
    *value = block_cache_ != nullptr ? block_cache_->capacity() : 0;
    return true;
  }
  if (property == "pmblade.mem-rebalances") {
    *value = arbiter_ != nullptr ? arbiter_->rebalances() : 0;
    return true;
  }
  if (property == "pmblade.memtable-limit") {
    *value = memtable_limit_.load(std::memory_order_relaxed);
    return true;
  }
  if (property == "pmblade.pm-bytes-written") {
    *value = pool_ != nullptr ? pool_->stats().bytes_written() : 0;
    return true;
  }
  if (property == "pmblade.num-shards") {
    *value = 1;
    return true;
  }
  // Monotonic write-amplification inputs: WA is computable from properties
  // alone as ssd-bytes-written / ssd-user-bytes-written.
  if (property == "pmblade.ssd-user-bytes-written") {
    *value = stats_.user_bytes_written();
    return true;
  }
  if (property == "pmblade.ssd-bytes-written") {
    *value = stats_.major_compaction_bytes();
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (property == "pmblade.l0-bytes") {
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->L0Bytes();
    *value = total;
    return true;
  }
  if (property == "pmblade.l1-bytes" || property == "pmblade.ssd-bytes") {
    // Historical name kept; covers the WHOLE SSD run stack (all levels) now
    // that policies other than leveled may hold more than one run.
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->SsdBytes();
    *value = total;
    return true;
  }
  if (property == "pmblade.num-ssd-runs") {
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->ssd_runs().size();
    *value = total;
    return true;
  }
  if (property == "pmblade.max-ssd-level") {
    uint64_t deepest = 0;
    for (const auto& p : partitions_) {
      deepest = std::max<uint64_t>(deepest, p->MaxSsdLevel());
    }
    *value = deepest;
    return true;
  }
  constexpr char kLevelPrefix[] = "pmblade.lsm.level";
  if (property.compare(0, sizeof(kLevelPrefix) - 1, kLevelPrefix) == 0) {
    // pmblade.lsm.level<i>.{runs,files,bytes}
    size_t pos = sizeof(kLevelPrefix) - 1;
    uint64_t level = 0;
    size_t digits = 0;
    while (pos < property.size() && property[pos] >= '0' &&
           property[pos] <= '9' && digits < 9) {
      level = level * 10 + static_cast<uint64_t>(property[pos] - '0');
      ++pos;
      ++digits;
    }
    if (digits > 0 && pos < property.size() && property[pos] == '.') {
      const std::string stat = property.substr(pos + 1);
      uint64_t runs = 0, files = 0, bytes = 0;
      LevelShapeLocked(static_cast<uint32_t>(level), &runs, &files, &bytes);
      if (stat == "runs") {
        *value = runs;
        return true;
      }
      if (stat == "files") {
        *value = files;
        return true;
      }
      if (stat == "bytes") {
        *value = bytes;
        return true;
      }
    }
    return false;
  }
  if (property == "pmblade.num-partitions") {
    *value = partitions_.size();
    return true;
  }
  if (property == "pmblade.pm-used-bytes") {
    *value = pool_->UsedBytes();
    return true;
  }
  if (property == "pmblade.num-unsorted-tables") {
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->unsorted().size();
    *value = total;
    return true;
  }
  if (property == "pmblade.num-sorted-tables") {
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p->sorted_run().size();
    *value = total;
    return true;
  }
  return false;
}

void DBImpl::LevelShapeLocked(uint32_t level, uint64_t* runs, uint64_t* files,
                              uint64_t* bytes) const {
  *runs = *files = *bytes = 0;
  for (const auto& partition : partitions_) {
    if (level == 0) {
      // PM level-0: each unsorted table is its own (single-table) run, the
      // sorted run is one more.
      *runs += partition->unsorted().size() +
               (partition->sorted_run().empty() ? 0 : 1);
      *files += partition->unsorted().size() + partition->sorted_run().size();
      *bytes += partition->L0Bytes();
    } else {
      for (const SsdRun& run : partition->ssd_runs()) {
        if (run.level != level) continue;
        *runs += 1;
        *files += run.tables.size();
        *bytes += run.bytes();
      }
    }
  }
}

bool DBImpl::GetProperty(const std::string& property, std::string* value) {
  // Deliberately does NOT hold mu_: the registry snapshot evaluates gauge
  // callbacks that lock mu_ themselves.
  if (property == "pmblade.compaction-policy") {
    *value = picker_->name();
    return true;
  }
  if (property == "pmblade.stats.json") {
    obs::MetricsSnapshot snapshot = metrics_.Snapshot(clock_->NowNanos());
    std::vector<obs::Event> events;
    if (trace_ != nullptr) events = trace_->Snapshot();
    *value = obs::ExportJson(snapshot, events);
    return true;
  }
  if (property == "pmblade.stats.prometheus") {
    *value = obs::ExportPrometheus(metrics_.Snapshot(clock_->NowNanos()));
    return true;
  }
  if (property == "pmblade.stats") {
    *value = stats_.ToString();
    return true;
  }
  if (property == "pmblade.trace.json") {
    *value = trace_ != nullptr ? trace_->DumpJsonLines() : std::string();
    return true;
  }
  if (property == "pmblade.mem.json") {
    *value = arbiter_ != nullptr ? arbiter_->ToJson()
                                 : std::string("{\"enabled\":false}");
    return true;
  }
  return false;
}

}  // namespace pmblade
