#include "core/options.h"

namespace pmblade {

Status Options::Sanitize() {
  if (env == nullptr) env = PosixEnv();
  if (raw_env == nullptr) raw_env = PosixEnv();
  if (logger == nullptr) logger = NullLogger();
  if (clock == nullptr) clock = SystemClock();
  if (memtable_bytes < 4096) {
    return Status::InvalidArgument("memtable_bytes must be >= 4096");
  }
  if (pm_pool_capacity < (1 << 20)) {
    return Status::InvalidArgument("pm_pool_capacity must be >= 1 MiB");
  }
  if (write_group_max_bytes < 4096) {
    return Status::InvalidArgument("write_group_max_bytes must be >= 4096");
  }
  if (write_slowdown_watermark <= 0.0 || write_slowdown_watermark > 1.0) {
    return Status::InvalidArgument(
        "write_slowdown_watermark must be in (0, 1]");
  }
  if (num_shards < 1 || num_shards > 128) {
    return Status::InvalidArgument("num_shards must be in [1, 128]");
  }
  for (size_t i = 1; i < partition_boundaries.size(); ++i) {
    if (partition_boundaries[i - 1] >= partition_boundaries[i]) {
      return Status::InvalidArgument(
          "partition_boundaries must be strictly ascending");
    }
  }
  if (memory_budget_bytes != 0) {
    if (memory_budget_bytes < (1 << 20)) {
      return Status::InvalidArgument(
          "memory_budget_bytes must be 0 (arbiter off) or >= 1 MiB");
    }
    if (arbiter_interval_ms == 0) {
      return Status::InvalidArgument("arbiter_interval_ms must be >= 1");
    }
  }
  if (compaction_retry_limit < 0) compaction_retry_limit = 0;
  if (compaction_workers < 1) compaction_workers = 1;
  if (compaction_workers > 64) compaction_workers = 64;
  if (max_subcompactions < 1) max_subcompactions = 1;
  if (max_subcompactions > 64) max_subcompactions = 64;
  if (major.concurrency < 1) major.concurrency = 1;
  if (major.worker_threads < 1) major.worker_threads = 1;
  if (major.max_io_q < 1) major.max_io_q = 1;
  return Status::OK();
}

const char* WritePressureName(WritePressure pressure) {
  switch (pressure) {
    case WritePressure::kNone:
      return "none";
    case WritePressure::kSlowdown:
      return "slowdown";
    case WritePressure::kStall:
      return "stall";
  }
  return "unknown";
}

}  // namespace pmblade
