#include "core/options.h"

#include "compaction/policy/compaction_picker.h"

namespace pmblade {

Status Options::Sanitize() {
  if (env == nullptr) env = PosixEnv();
  if (raw_env == nullptr) raw_env = PosixEnv();
  if (logger == nullptr) logger = NullLogger();
  if (clock == nullptr) clock = SystemClock();
  if (memtable_bytes < 4096) {
    return Status::InvalidArgument("memtable_bytes must be >= 4096");
  }
  if (pm_pool_capacity < (1 << 20)) {
    return Status::InvalidArgument("pm_pool_capacity must be >= 1 MiB");
  }
  if (write_group_max_bytes < 4096) {
    return Status::InvalidArgument("write_group_max_bytes must be >= 4096");
  }
  if (write_slowdown_watermark <= 0.0 || write_slowdown_watermark > 1.0) {
    return Status::InvalidArgument(
        "write_slowdown_watermark must be in (0, 1]");
  }
  if (num_shards < 1 || num_shards > 128) {
    return Status::InvalidArgument("num_shards must be in [1, 128]");
  }
  for (size_t i = 1; i < partition_boundaries.size(); ++i) {
    if (partition_boundaries[i - 1] >= partition_boundaries[i]) {
      return Status::InvalidArgument(
          "partition_boundaries must be strictly ascending");
    }
  }
  if (memory_budget_bytes != 0) {
    if (memory_budget_bytes < (1 << 20)) {
      return Status::InvalidArgument(
          "memory_budget_bytes must be 0 (arbiter off) or >= 1 MiB");
    }
    if (arbiter_interval_ms == 0) {
      return Status::InvalidArgument("arbiter_interval_ms must be >= 1");
    }
  }
  if (!IsValidCompactionPolicy(compaction_policy)) {
    return Status::InvalidArgument(
        "unknown compaction_policy \"" + compaction_policy +
        "\" (expected leveled, tiered or lazy_leveling)");
  }
  if (compaction_policy != "leveled" && !enable_cost_model) {
    return Status::InvalidArgument(
        "compaction_policy \"" + compaction_policy +
        "\" requires enable_cost_model (the conventional trigger path is "
        "leveled-only)");
  }
  if (compaction_size_ratio < 2 || compaction_size_ratio > 32) {
    return Status::InvalidArgument(
        "compaction_size_ratio must be in [2, 32]");
  }
  if (max_ssd_levels < 1 || max_ssd_levels > 8) {
    return Status::InvalidArgument("max_ssd_levels must be in [1, 8]");
  }
  if (compaction_retry_limit < 0) compaction_retry_limit = 0;
  if (compaction_workers < 1) compaction_workers = 1;
  if (compaction_workers > 64) compaction_workers = 64;
  if (max_subcompactions < 1) max_subcompactions = 1;
  if (max_subcompactions > 64) max_subcompactions = 64;
  if (major.concurrency < 1) major.concurrency = 1;
  if (major.worker_threads < 1) major.worker_threads = 1;
  if (major.max_io_q < 1) major.max_io_q = 1;
  return Status::OK();
}

const char* WritePressureName(WritePressure pressure) {
  switch (pressure) {
    case WritePressure::kNone:
      return "none";
    case WritePressure::kSlowdown:
      return "slowdown";
    case WritePressure::kStall:
      return "stall";
  }
  return "unknown";
}

}  // namespace pmblade
