// DB-level runtime statistics: operation counts, where reads were served
// from (memtable / PM level-0 / SSD), latency histograms, and the traffic
// totals the write-amplification experiments report.
//
// Hot-path discipline: counters are relaxed atomics and the latency
// histograms are sharded per thread (ShardedHistogram), so concurrent
// readers/writers never serialize on a single statistics mutex. The whole
// set registers into an obs::MetricsRegistry (RegisterWith) so the
// observability exporters see these counters without duplicated state.

#ifndef PMBLADE_CORE_STATISTICS_H_
#define PMBLADE_CORE_STATISTICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/histogram.h"

namespace pmblade {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Which layer answered a read.
enum class ReadSource {
  kMemtable = 0,
  kPmLevel0 = 1,
  kSsdLevel1 = 2,
  kNotFound = 3,
};
constexpr int kNumReadSources = 4;

class DbStatistics {
 public:
  void RecordRead(ReadSource source, uint64_t latency_nanos) {
    reads_by_source_[static_cast<int>(source)].fetch_add(
        1, std::memory_order_relaxed);
    get_latency_.Add(latency_nanos);
  }
  void RecordWrite(uint64_t bytes, uint64_t latency_nanos) {
    user_bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);
    put_latency_.Add(latency_nanos);
  }
  void RecordScan(uint64_t entries, uint64_t latency_nanos) {
    scans_.fetch_add(1, std::memory_order_relaxed);
    scan_entries_.fetch_add(entries, std::memory_order_relaxed);
    scan_latency_.Add(latency_nanos);
  }

  void AddFlush() { flushes_.fetch_add(1, std::memory_order_relaxed); }
  void AddInternalCompaction(uint64_t bytes_in, uint64_t bytes_out) {
    internal_compactions_.fetch_add(1, std::memory_order_relaxed);
    internal_compaction_bytes_in_.fetch_add(bytes_in,
                                            std::memory_order_relaxed);
    internal_compaction_bytes_out_.fetch_add(bytes_out,
                                             std::memory_order_relaxed);
  }
  void AddMajorCompaction(uint64_t bytes_written) {
    major_compactions_.fetch_add(1, std::memory_order_relaxed);
    major_compaction_bytes_.fetch_add(bytes_written,
                                      std::memory_order_relaxed);
  }

  uint64_t reads(ReadSource source) const {
    return reads_by_source_[static_cast<int>(source)].load();
  }
  uint64_t total_reads() const {
    uint64_t total = 0;
    for (const auto& counter : reads_by_source_) total += counter.load();
    return total;
  }
  /// Fraction of successful reads answered without touching the SSD.
  double PmHitRatio() const {
    uint64_t fast = reads(ReadSource::kMemtable) + reads(ReadSource::kPmLevel0);
    uint64_t slow = reads(ReadSource::kSsdLevel1);
    uint64_t total = fast + slow;
    return total == 0 ? 0.0 : static_cast<double>(fast) / total;
  }

  uint64_t writes() const { return writes_.load(); }
  uint64_t user_bytes_written() const { return user_bytes_written_.load(); }
  uint64_t flushes() const { return flushes_.load(); }
  uint64_t internal_compactions() const { return internal_compactions_.load(); }
  uint64_t major_compactions() const { return major_compactions_.load(); }
  /// Cumulative SSD bytes written by major compactions — the numerator of
  /// the write-amplification experiments (user_bytes_written() is the
  /// denominator).
  uint64_t major_compaction_bytes() const {
    return major_compaction_bytes_.load();
  }
  uint64_t scans() const { return scans_.load(); }

  Histogram GetLatencyHistogram() const { return get_latency_.Merged(); }
  Histogram PutLatencyHistogram() const { return put_latency_.Merged(); }
  Histogram ScanLatencyHistogram() const { return scan_latency_.Merged(); }

  /// Registers every counter and histogram with `registry` (pull
  /// callbacks; no state is duplicated). Metric names live under
  /// "pmblade.reads.*", "pmblade.writes", "pmblade.flush.*",
  /// "pmblade.compaction.*" and "pmblade.latency.*".
  void RegisterWith(obs::MetricsRegistry* registry);

  /// Adds `other`'s counters and latency samples into this object
  /// (ShardedDB's cross-shard aggregation: Reset() then AddFrom each
  /// shard). Reads `other` with relaxed atomics — the result is a
  /// statistically consistent snapshot, not a linearizable one.
  void AddFrom(const DbStatistics& other);

  void Reset();
  std::string ToString() const;

 private:
  std::atomic<uint64_t> reads_by_source_[kNumReadSources] = {};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> scan_entries_{0};
  std::atomic<uint64_t> user_bytes_written_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> internal_compactions_{0};
  std::atomic<uint64_t> internal_compaction_bytes_in_{0};
  std::atomic<uint64_t> internal_compaction_bytes_out_{0};
  std::atomic<uint64_t> major_compactions_{0};
  std::atomic<uint64_t> major_compaction_bytes_{0};

  ShardedHistogram get_latency_;
  ShardedHistogram put_latency_;
  ShardedHistogram scan_latency_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_STATISTICS_H_
