// DBUserIterator: converts the merged internal-key stream (memtable + all
// level-0 tables + level-1 runs) into the user-visible view at a snapshot:
// entries above the snapshot are invisible, only the newest visible version
// of each user key is surfaced, and tombstoned keys are skipped.

#include "compaction/merging_iterator.h"
#include "core/db_impl.h"
#include "core/version.h"

namespace pmblade {

namespace {

class DBUserIteratorImpl final : public Iterator {
 public:
  DBUserIteratorImpl(Iterator* internal, const InternalKeyComparator* icmp,
                     SequenceNumber snapshot)
      : internal_(internal), icmp_(icmp), snapshot_(snapshot) {}

  bool Valid() const override { return valid_; }
  Slice key() const override { return Slice(saved_key_); }
  Slice value() const override { return Slice(saved_value_); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return internal_->status();
  }

  void SeekToFirst() override {
    direction_ = kForward;
    internal_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void SeekToLast() override {
    direction_ = kReverse;
    internal_->SeekToLast();
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    direction_ = kForward;
    std::string seek_key;
    AppendInternalKey(&seek_key, target, snapshot_, kValueTypeForSeek);
    internal_->Seek(seek_key);
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    if (!valid_) return;
    if (direction_ == kReverse) {
      // Reposition forward past the current user key.
      direction_ = kForward;
      std::string seek_key;
      AppendInternalKey(&seek_key, saved_key_, 0, kTypeDeletion);
      internal_->Seek(seek_key);
      if (internal_->Valid() &&
          icmp_->user_comparator()->Compare(
              ExtractUserKey(internal_->key()), Slice(saved_key_)) == 0) {
        internal_->Next();
      }
      FindNextUserEntry(/*skipping=*/false);
      return;
    }
    // Forward: skip remaining versions of the current user key.
    FindNextUserEntry(/*skipping=*/true);
  }

  void Prev() override {
    if (!valid_) return;
    if (direction_ == kForward) {
      // Position internal_ before all entries of saved_key_.
      direction_ = kReverse;
      std::string seek_key;
      AppendInternalKey(&seek_key, saved_key_, kMaxSequenceNumber,
                        kValueTypeForSeek);
      internal_->Seek(seek_key);
      if (internal_->Valid()) {
        internal_->Prev();
      } else {
        internal_->SeekToLast();
      }
    } else {
      // Reverse: internal_ currently sits on the entry we consumed; walk
      // back past all versions of the current user key.
      while (internal_->Valid() &&
             icmp_->user_comparator()->Compare(
                 ExtractUserKey(internal_->key()), Slice(saved_key_)) == 0) {
        internal_->Prev();
      }
    }
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  /// Forward scan: position on the newest visible, non-deleted version of
  /// the next user key. If `skipping`, entries for saved_key_ are skipped.
  void FindNextUserEntry(bool skipping) {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        status_ = Status::Corruption("db iterator: malformed internal key");
        return;
      }
      if (parsed.sequence > snapshot_) {
        internal_->Next();
        continue;
      }
      if (skipping &&
          icmp_->user_comparator()->Compare(parsed.user_key,
                                            Slice(saved_key_)) <= 0) {
        internal_->Next();
        continue;
      }
      switch (parsed.type) {
        case kTypeDeletion:
          // This user key is deleted at the snapshot; skip all its versions.
          saved_key_.assign(parsed.user_key.data(), parsed.user_key.size());
          skipping = true;
          internal_->Next();
          break;
        case kTypeValue:
          saved_key_.assign(parsed.user_key.data(), parsed.user_key.size());
          saved_value_.assign(internal_->value().data(),
                              internal_->value().size());
          valid_ = true;
          return;
      }
    }
  }

  /// Backward scan: internal_ is positioned at some entry (or invalid);
  /// find the previous user key whose newest visible version is a value.
  void FindPrevUserEntry() {
    valid_ = false;
    // Walk backwards accumulating the newest visible version of each user
    // key; emit when we step past a user key whose newest version is a
    // value.
    ValueType value_type = kTypeDeletion;
    std::string current_key;
    std::string current_value;
    bool have_current = false;

    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        status_ = Status::Corruption("db iterator: malformed internal key");
        return;
      }
      if (parsed.sequence <= snapshot_) {
        if (have_current &&
            icmp_->user_comparator()->Compare(parsed.user_key,
                                              Slice(current_key)) < 0) {
          // Finished scanning current_key's versions.
          if (value_type == kTypeValue) {
            saved_key_ = std::move(current_key);
            saved_value_ = std::move(current_value);
            valid_ = true;
            return;
          }
          have_current = false;
        }
        // Moving backward we see versions oldest..newest? No: backward over
        // (user asc, seq desc) visits newer versions LAST for a given key.
        // So each visible entry we see replaces the previous candidate.
        current_key.assign(parsed.user_key.data(), parsed.user_key.size());
        current_value.assign(internal_->value().data(),
                             internal_->value().size());
        value_type = parsed.type;
        have_current = true;
      }
      internal_->Prev();
    }
    if (have_current && value_type == kTypeValue) {
      saved_key_ = std::move(current_key);
      saved_value_ = std::move(current_value);
      valid_ = true;
      direction_ = kReverse;
      return;
    }
    valid_ = false;
  }

  std::unique_ptr<Iterator> internal_;
  const InternalKeyComparator* icmp_;
  SequenceNumber snapshot_;

  bool valid_ = false;
  Direction direction_ = kForward;
  std::string saved_key_;    // user key
  std::string saved_value_;
  Status status_;
};

}  // namespace

Iterator* NewUserIterator(Iterator* internal,
                          const InternalKeyComparator* icmp,
                          SequenceNumber snapshot) {
  return new DBUserIteratorImpl(internal, icmp, snapshot);
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  SequenceNumber snapshot =
      options.snapshot != 0 ? options.snapshot : last_sequence_;
  Iterator* merged =
      NewMergingIterator(&icmp_, CollectInternalIterators());
  return new DBUserIteratorImpl(merged, &icmp_, snapshot);
}

}  // namespace pmblade
