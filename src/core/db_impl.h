// DBImpl: the engine behind pmblade::DB.
//
// Threading model: writes are serialized by the DB mutex; flush and
// compaction run inline on the triggering writer (the paper's write-stall
// behaviour emerges naturally), while the major-compaction engine
// parallelizes internally with its own worker threads + coroutines.

#ifndef PMBLADE_CORE_DB_IMPL_H_
#define PMBLADE_CORE_DB_IMPL_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "compaction/internal_compaction.h"
#include "compaction/major_compaction.h"
#include "compaction/minor_compaction.h"
#include "core/db.h"
#include "core/manifest.h"
#include "core/partition.h"
#include "env/sim_env.h"
#include "memtable/skiplist_memtable.h"
#include "memtable/wal.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "sstable/block_cache.h"
#include "util/bloom.h"

namespace pmblade {

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  uint64_t GetSnapshot() override;
  void ReleaseSnapshot(uint64_t snapshot) override;
  Status FlushMemTable() override;
  Status CompactLevel0() override;
  Status CompactToLevel1(bool respect_cost_model) override;
  const DbStatistics& statistics() const override { return stats_; }
  DbStatistics& statistics() override { return stats_; }
  bool GetProperty(const std::string& property, uint64_t* value) override;
  bool GetProperty(const std::string& property, std::string* value) override;

  // Used by DB::Open.
  Status Init();

  // Exposed for tests/benches.
  PmPool* pm_pool() { return pool_.get(); }
  SsdModel* ssd_model() { return model_; }
  const Options& options() const { return options_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::EventBus* event_bus() { return &events_; }
  obs::TraceRecorder* trace() { return trace_.get(); }

 private:
  friend class DBUserIterator;

  struct RecordedRead;

  // ---- startup ----
  Status RecoverPartitions(const ManifestState& state);
  Status ReplayWal(uint64_t wal_number);
  Status NewWal();

  // ---- write path (mutex held unless noted) ----
  Status MakeRoomForWrite();
  Status FlushMemTableLocked();
  /// Runs Algorithm 1 for the partitions touched by the last flush.
  Status MaybeScheduleCompactions(const std::vector<Partition*>& touched);
  Status RunInternalCompactionOnPartition(Partition* partition);
  Status RunMajorCompactionOnPartitions(
      const std::vector<Partition*>& victims);
  /// Emits a keep_set_selected event carrying the Eq. 3 score of every
  /// partition (reads/byte) and which side of the knapsack it landed on.
  void EmitKeepSetEvent(const std::vector<PartitionCounters>& all,
                        const std::set<size_t>& keep, uint64_t tau_t,
                        uint64_t total_l0_bytes);

  Status PersistManifest();

  // ---- read path ----
  Partition* FindPartition(const Slice& user_key);
  SequenceNumber OldestLiveSnapshot() const;

  /// Builds the children for a merged internal iterator at a snapshot.
  std::vector<Iterator*> CollectInternalIterators();

  Options options_;
  std::string dbname_;
  Env* env_ = nullptr;
  Env* raw_env_ = nullptr;
  SsdModel* model_ = nullptr;
  std::unique_ptr<SsdModel> owned_model_;
  Clock* clock_ = nullptr;

  InternalKeyComparator icmp_;
  std::unique_ptr<BloomFilterPolicy> filter_policy_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<PmPool> pool_;
  std::unique_ptr<L0TableFactory> l0_factory_;     // level-0 layout
  std::unique_ptr<L0TableFactory> l1_factory_;     // SSTables for level-1
  std::unique_ptr<CostModel> cost_model_;

  std::mutex mu_;
  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;  // only during flush (inline), else nullptr
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  SequenceNumber last_sequence_ = 0;

  std::vector<std::unique_ptr<Partition>> partitions_;  // ascending ranges
  uint64_t next_partition_id_ = 1;

  std::multiset<uint64_t> live_snapshots_;

  DbStatistics stats_;

  // ---- observability ----
  // Declared after everything the registered callbacks capture; wired in
  // Init(). Cached counter pointers keep cost-model accounting off the
  // registry lock (important: compaction runs under mu_, and taking the
  // registry lock there would invert the Snapshot callback lock order).
  obs::MetricsRegistry metrics_;
  obs::EventBus events_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  obs::Counter* decision_counter_ = nullptr;       // Eq. 1/2 evaluations
  obs::Counter* eq1_trigger_counter_ = nullptr;
  obs::Counter* eq2_trigger_counter_ = nullptr;
  obs::Counter* keep_set_counter_ = nullptr;       // Eq. 3 selections
  obs::Counter* wal_sync_counter_ = nullptr;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_DB_IMPL_H_
