// DBImpl: the engine behind pmblade::DB.
//
// Threading model (the concurrent write pipeline):
//   * Writes go through a leader/follower writer queue. The front writer
//     (leader) coalesces pending batches into one group, appends it to the
//     WAL, fsyncs ONCE if any member asked for durability, and inserts into
//     the memtable — all OUTSIDE the DB mutex (queue order makes the
//     WAL/memtable section single-writer). Sequence visibility is published
//     under the mutex only after the whole group is in the memtable, so
//     readers never observe a torn group.
//   * Memtable flush runs on a background thread: MakeRoomForWrite switches
//     mem_ -> imm_ and schedules the PM-table build on a one-thread pool;
//     writers are backpressured (slowdown, then hard stall) instead of
//     building tables inline. Flush completion installs the level-0 tables
//     under a short critical section, wakes stalled writers, and hands the
//     Eq. 1/2/3 compaction triggers to the compaction scheduler.
//   * Algorithm 1 (internal + major compaction) runs on the DEDICATED
//     CompactionScheduler pool (Options::compaction_workers threads; 1 by
//     default), never on the flush thread: a check snapshots partition
//     table refs and counters under a short mu_ hold, runs the merge and
//     all simulated-SSD I/O with the mutex released, and re-acquires mu_
//     only for the install + PersistManifest step. With N workers, several
//     checks execute concurrently under the per-partition CLAIM protocol:
//     a check claims (in compacting_, under mu_) every partition it will
//     compact — its dirty set plus any extra major-compaction victims — and
//     skips partitions another check holds, so no two workers ever mutate
//     the same partition's runs. Claims are released (and skipped work is
//     re-scheduled) when the check finishes. Manual compactions
//     (CompactLevel0/CompactToLevel1) funnel through RunExclusive, a
//     pool-wide barrier, so they observe quiesced partitions without
//     claiming. Only a claim-holding check (or an exclusive manual job)
//     removes tables from a partition; the flush thread only prepends — see
//     the ref discipline notes in partition.h.
//   * Readers grab {mem, imm, partition table refs, snapshot} under a brief
//     mutex hold and probe everything lock-free afterwards, so neither a
//     flush nor a compaction in flight ever blocks a Get past that grab.
//   * The major-compaction engine additionally parallelizes internally with
//     its own worker threads + coroutines.

#ifndef PMBLADE_CORE_DB_IMPL_H_
#define PMBLADE_CORE_DB_IMPL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "compaction/internal_compaction.h"
#include "compaction/major_compaction.h"
#include "compaction/minor_compaction.h"
#include "compaction/policy/compaction_picker.h"
#include "core/compaction_scheduler.h"
#include "core/db.h"
#include "core/manifest.h"
#include "core/partition.h"
#include "env/sim_env.h"
#include "mem/arbiter.h"
#include "memtable/skiplist_memtable.h"
#include "memtable/wal.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "sstable/block_cache.h"
#include "util/bloom.h"
#include "util/thread_pool.h"

namespace pmblade {

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  uint64_t GetSnapshot() override;
  void ReleaseSnapshot(uint64_t snapshot) override;
  Status FlushMemTable() override;
  Status CompactLevel0() override;
  Status CompactToLevel1(bool respect_cost_model) override;
  const DbStatistics& statistics() const override { return stats_; }
  DbStatistics& statistics() override { return stats_; }
  using DB::GetWritePressure;  // keyed/per-shard overloads (single shard:
                               // they forward to the global probe)
  WritePressure GetWritePressure() override;
  obs::MetricsRegistry* metrics_registry() override { return &metrics_; }
  bool GetProperty(const std::string& property, uint64_t* value) override;
  bool GetProperty(const std::string& property, std::string* value) override;

  // ---- cross-shard two-phase commit (driven by ShardedDB) ----
  // A cross-shard batch is split into per-shard sub-batches; each
  // participating shard gets a kPrepare WAL record (always fsynced) holding
  // its sub-batch, then a tiny kCommit marker that assigns sequences and
  // inserts the buffered payload into the memtable. Prepares consume no
  // sequence numbers and are invisible to readers until committed. Recovery
  // buffers replayed prepares; the facade resolves in-doubt transactions
  // across shards at open (see ShardedDB::ResolveInDoubtTxns).

  /// What this shard knows about a transaction, for sibling resolution.
  enum class TxnPeerState { kUnknown, kPrepared, kCommitted, kRolledBack };
  struct InDoubtTxn {
    uint64_t txn_id = 0;
    std::vector<uint32_t> participants;
  };

  /// Phase 1: append + fsync a kPrepare record carrying `batch` and buffer
  /// it. Goes through the writer queue as its own commit group.
  Status PrepareTxn(const WriteOptions& options, uint64_t txn_id,
                    const std::vector<uint32_t>& participants,
                    WriteBatch* batch);
  /// Phase 2: append a kCommit marker (fsynced only when options.sync),
  /// assign sequences, insert the buffered sub-batch into the memtable and
  /// publish. The entry is retained as a committed fence until ForgetTxn.
  Status CommitTxn(const WriteOptions& options, uint64_t txn_id);
  /// Appends a kRollback marker (fsynced only when options.sync) and drops
  /// the buffered sub-batch. Harmless if the txn was never prepared here.
  Status RollbackTxn(const WriteOptions& options, uint64_t txn_id);
  /// Transactions recovered as prepared-but-unresolved (no commit/rollback
  /// marker replayed).
  std::vector<InDoubtTxn> GetInDoubtTxns();
  TxnPeerState QueryTxn(uint64_t txn_id);
  /// True once the txn's commit marker is covered by a WAL fsync (or the
  /// txn is unknown, i.e. already forgotten).
  bool TxnMarkerDurable(uint64_t txn_id);
  /// Drops the committed fence / recovery evidence for `txn_id`. Only safe
  /// once every participant's commit marker is durable.
  void ForgetTxn(uint64_t txn_id);
  /// Highest txn id seen during WAL replay (0 if none): the facade seeds
  /// its txn-id allocator above the max across shards.
  uint64_t MaxSeenTxnId();
  /// Every txn id with retained state here (pending prepares, committed
  /// fences, replay evidence) — what the facade sweeps after resolution.
  std::vector<uint64_t> GetRetainedTxnIds();

  // Used by DB::Open.
  Status Init();

  // Exposed for tests/benches.
  PmPool* pm_pool() { return pool_.get(); }
  SsdModel* ssd_model() { return model_; }
  const Options& options() const { return options_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::EventBus* event_bus() { return &events_; }
  obs::TraceRecorder* trace() { return trace_.get(); }

  // ---- hooks for an external arbiter (ShardedDB's shared MemoryArbiter;
  // also exercised directly by tests) ----
  /// Retunes the live memtable rotation threshold (what the embedded
  /// arbiter's apply callback does for mem::kMemtable).
  void SetMemtableLimit(size_t bytes) {
    memtable_limit_.store(bytes, std::memory_order_relaxed);
  }
  /// Retunes the Eq. 3 keep-set budget τ_t (mem::kKeepSet). Clamped to >= 1
  /// because 0 reads as "unset" to the cost model.
  void SetDynamicTauT(uint64_t bytes);

 private:
  friend class DBUserIterator;

  struct RecordedRead;

  /// What a queued writer asks the leader to do. Txn ops form their own
  /// single-member commit groups (BuildBatchGroup never coalesces across
  /// them), keeping the WAL record <-> writer mapping one-to-one.
  enum class WriteKind : uint8_t { kBatch, kTxnPrepare, kTxnCommit,
                                   kTxnRollback };

  /// One queued write (stack-allocated in Write). batch == nullptr with
  /// kind == kBatch is a force-flush marker: the leader only rotates the
  /// memtable.
  struct WriterState {
    explicit WriterState(WriteBatch* b, bool s) : batch(b), sync(s) {}
    WriterState(WriteKind k, uint64_t id, WriteBatch* b, bool s)
        : batch(b), sync(s), kind(k), txn_id(id) {}
    WriteBatch* batch;
    bool sync;
    WriteKind kind = WriteKind::kBatch;
    uint64_t txn_id = 0;
    const std::vector<uint32_t>* participants = nullptr;  // kTxnPrepare only
    bool done = false;
    /// Set when the leader already decided this writer's individual status
    /// (txn-group members, validation outcomes); the wake loop must not
    /// overwrite it with the group status.
    bool own_status = false;
    Status status;
    std::condition_variable cv;
  };

  /// Shared queue-join + leader dispatch behind Write and the txn ops.
  Status WriteInternal(const WriteOptions& options, WriterState& w);
  /// Leader-only: executes the leader's txn op plus every txn op queued
  /// directly behind it as ONE commit group — a single WAL append run and
  /// at most one shared fsync (the txn mirror of BuildBatchGroup). Enters
  /// and leaves with `lock` held; the WAL append / fsync / memtable inserts
  /// run unlocked, like the batch path. Advances `*last_writer` to the last
  /// coalesced member so the caller's wake loop covers the whole group.
  Status TxnGroupWriteLocked(std::unique_lock<std::mutex>& lock,
                             WriterState& leader, WriterState** last_writer);
  /// Re-appends buffered prepares (and commit markers for fences) into the
  /// freshly rotated WAL, then fsyncs it if anything was carried: the old
  /// copies die with their WAL at the next flush commit, so the new WAL
  /// must hold the records durably BEFORE that deletion can happen.
  Status CarryTxnRecordsLocked();

  // ---- startup ----
  Status RecoverPartitions(const ManifestState& state);
  /// Replays every WAL file numbered >= `floor` (ascending) into mem_ and
  /// garbage-collects older, already-flushed logs.
  Status ReplayWals(uint64_t floor);
  Status NewWal();

  // ---- write path ----
  /// Leader-only; mu_ held (released while sleeping/stalling). Ensures the
  /// active memtable has room, switching it out + scheduling a background
  /// flush when full (or `force`), applying slowdown/stop backpressure.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock, bool force);
  /// mu_ held, imm_ == nullptr: mem_ -> imm_, new WAL, schedule the flush.
  Status SwitchMemTableLocked();
  /// Coalesces writers_ [front, ...] into one batch; *sync becomes the OR
  /// of every member's sync flag, *num_members the group width. mu_ held.
  WriteBatch* BuildBatchGroup(WriterState** last_writer, bool* sync,
                              size_t* num_members);
  /// Runs on flush_pool_: builds per-partition L0 tables from imm_ without
  /// the mutex, installs them + commits the manifest under it, wakes
  /// stalled writers, then enqueues the compaction triggers to the
  /// scheduler.
  void BackgroundFlush();
  /// Eq. 2 update-detection counters for one commit group; runs in the
  /// unlocked leader section BEFORE the group is inserted into `mem`.
  void NoteGroupWrites(const WriteBatch& group, MemTable* mem);

  /// mu_ held. Records the partitions the flush touched and enqueues one
  /// Algorithm-1 check on the compaction scheduler. Cannot fail — so the
  /// flush path never inherits a compaction error (bg_error_ is reserved
  /// for flush/WAL/manifest failures).
  void ScheduleCompactionCheck(const std::vector<Partition*>& touched);
  /// mu_ held. Adds `partition` to compaction_dirty_ (deduplicated).
  void MarkCompactionDirtyLocked(Partition* partition);
  /// Scheduler-pool entry: CLAIMS the dirty partitions no concurrent check
  /// holds (leaving the rest dirty for the holder to re-trigger) and runs
  /// Algorithm 1 on them. A failure re-arms the dirty set so the
  /// scheduler's retry (or the next flush-triggered check) re-evaluates the
  /// same partitions; leftover dirty work found at completion is handed to
  /// a fresh check.
  Status BackgroundCompactionCheck();
  /// Algorithm 1 for the CLAIMED set `touched`. Enters and leaves with
  /// `lock` held, but releases it for every merge and simulated-SSD I/O.
  /// Claims extra major-compaction victims itself (releasing them before
  /// returning); continues past a failing partition's internal compaction
  /// and reports the first error at the end, so one poisoned partition
  /// never blocks its siblings' progress within the same check.
  Status RunCompactionsLocked(std::unique_lock<std::mutex>& lock,
                              const std::vector<Partition*>& touched);
  Status RunInternalCompactionOnPartition(std::unique_lock<std::mutex>& lock,
                                          Partition* partition);

  /// A picker-chosen CompactionJob resolved to its partition. Fields mirror
  /// CompactionJob (see compaction/policy/compaction_picker.h); run indices
  /// are valid from the pick through the install because the executor holds
  /// the partition's claim and only the claim holder mutates ssd_runs().
  struct MajorJob {
    Partition* partition = nullptr;
    bool include_l0 = true;
    size_t run_begin = 0;
    size_t run_end = 0;
    uint32_t output_level = 1;
  };
  /// The "classic" major-compaction job: level-0 plus the whole run stack
  /// merge into one level-1 run (what every pre-picker compaction did, and
  /// still the shape of the conventional-policy and manual paths).
  static MajorJob FullCollapseJob(Partition* partition);
  /// Snapshot of every partition for the picker; `ours` is this check's
  /// claimed set (claimable for job purposes even though marked claimed).
  /// mu_ held.
  PickContext BuildPickContextLocked(const std::set<Partition*>& ours);
  /// Executes picker-chosen jobs — at most one per partition — as ONE
  /// compactor run: key-range subcompactions per job, outputs opened before
  /// any mutation, every install under a single mu_ hold + manifest commit.
  /// Caller holds the claim of every job's partition.
  Status RunMajorCompactionOnJobs(std::unique_lock<std::mutex>& lock,
                                  const std::vector<MajorJob>& jobs);
  /// mu_ held. Retries file deletions whose first attempt failed (flushed
  /// WALs); called after a successful manifest commit.
  void RetryPendingFileGcLocked();
  /// Emits a keep_set_selected event carrying the Eq. 3 score of every
  /// partition (reads/byte) and which side of the knapsack it landed on.
  void EmitKeepSetEvent(const std::vector<PartitionCounters>& all,
                        const std::set<size_t>& keep, uint64_t tau_t,
                        uint64_t total_l0_bytes);

  Status PersistManifest();

  /// mu_ held. Aggregate shape of one LSM level across partitions: level 0
  /// is the PM side (each unsorted table is one run, the sorted run one
  /// more); level >= 1 counts the SSD runs carrying that level tag.
  void LevelShapeLocked(uint32_t level, uint64_t* runs, uint64_t* files,
                        uint64_t* bytes) const;

  // ---- read path ----
  Partition* FindPartition(const Slice& user_key);
  SequenceNumber OldestLiveSnapshot() const;

  /// Builds the children for a merged internal iterator at a snapshot.
  std::vector<Iterator*> CollectInternalIterators();

  Options options_;
  std::string dbname_;
  Env* env_ = nullptr;
  Env* raw_env_ = nullptr;
  SsdModel* model_ = nullptr;
  std::unique_ptr<SsdModel> owned_model_;
  Clock* clock_ = nullptr;

  InternalKeyComparator icmp_;
  std::unique_ptr<BloomFilterPolicy> filter_policy_;
  /// The SST block cache this engine reads through: either owned (created
  /// from block_cache_bytes) or the process-wide cache a ShardedDB injected
  /// via Options::shared_block_cache. nullptr = caching disabled.
  BlockCache* block_cache_ = nullptr;
  std::unique_ptr<BlockCache> owned_block_cache_;
  std::unique_ptr<PmPool> pool_;
  std::unique_ptr<L0TableFactory> l0_factory_;     // level-0 layout
  std::unique_ptr<L0TableFactory> l1_factory_;     // SSTables for level-1
  std::unique_ptr<CostModel> cost_model_;
  /// The compaction policy (Options::compaction_policy): owns victim
  /// selection, trigger evaluation and output-level placement for SSD
  /// compaction. Never null after Init.
  std::unique_ptr<CompactionPicker> picker_;

  std::mutex mu_;
  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;  // being flushed in the background, else nullptr
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  /// WAL numbers (ascending) whose data is not yet durable in level-0
  /// tables. The manifest records the front; recovery replays every log
  /// >= it. With a background flush in flight there are up to two entries
  /// beyond the active log (the imm_'s logs await their flush commit).
  std::vector<uint64_t> live_wals_;
  /// The subset of live_wals_ feeding imm_; deleted when its flush commits.
  std::vector<uint64_t> imm_wals_;
  SequenceNumber last_sequence_ = 0;
  /// Every sequence <= this is durable in level-0 tables (memtables flush
  /// in sequence order, so the flushed imm_'s ceiling is a true watermark).
  /// Persisted in the manifest and used as WAL replay's re-apply floor for
  /// carried txn commit fences. last_sequence_ is NOT a substitute: the
  /// manifest records it ahead of any flush of the covered data (Init,
  /// sibling-partition flushes), and using it as the floor silently drops
  /// committed-but-unflushed txn payloads on a second recovery.
  SequenceNumber flushed_sequence_ = 0;
  /// last_sequence_ captured when mem_ was frozen into imm_; becomes
  /// flushed_sequence_ when that flush commits.
  SequenceNumber imm_ceiling_ = 0;

  // Writer queue (group commit). The front writer is the leader; only it
  // touches the WAL and memtable, which is what makes the unlocked commit
  // section safe.
  std::deque<WriterState*> writers_;
  WriteBatch group_batch_;  // leader scratch for coalesced groups

  // ---- two-phase-commit state (guarded by mu_ unless noted) ----
  /// A prepared (and possibly committed) transaction this shard
  /// participates in. Pending entries (committed == false) hold the
  /// sub-batch until a commit/rollback decides its fate; committed entries
  /// stay as FENCES until the facade's ForgetTxn, so WAL rotation keeps
  /// carrying commit evidence a sibling's recovery might still need.
  struct TxnEntry {
    std::vector<uint32_t> participants;
    std::string payload;        // sub-batch rep, base sequence still 0
    bool committed = false;
    SequenceNumber base_seq = 0;
    uint64_t marker_ticket = 0;  // WAL append ticket of the newest record
  };
  std::map<uint64_t, TxnEntry> txns_;
  /// Replay evidence for transactions whose marker survived but whose
  /// buffered payload did not need retention (marker-only commits /
  /// rollbacks seen in the logs). Consulted by QueryTxn during the
  /// facade's resolution pass, cleared by ForgetTxn.
  std::set<uint64_t> replay_committed_;
  std::set<uint64_t> replay_rolled_back_;
  uint64_t max_seen_txn_id_ = 0;
  /// WAL durability tickets: every AddRecord bumps the append ticket; every
  /// successful fsync publishes the append ticket it covered (appends and
  /// syncs are leader-serialized, so "covered" is just the value at sync
  /// time). A txn marker is durable iff its ticket <= the synced ticket.
  std::atomic<uint64_t> wal_append_ticket_{0};
  std::atomic<uint64_t> wal_synced_ticket_{0};

  // Background flush.
  std::unique_ptr<ThreadPool> flush_pool_;  // one thread
  std::condition_variable flush_done_cv_;   // imm_ drained / bg error
  Status bg_error_;  // sticky fatal background error (flush/WAL/manifest
                     // failures ONLY — compaction failures are retryable and
                     // stay inside the scheduler)

  // Background compaction. Declared before metrics_ (the scheduler
  // registers gauge callbacks capturing itself).
  std::unique_ptr<CompactionScheduler> compaction_scheduler_;
  /// Partitions touched by flushes since the last Algorithm-1 check ran;
  /// guarded by mu_.
  std::vector<Partition*> compaction_dirty_;
  /// The claim set: partitions some in-flight check is compacting. Guarded
  /// by mu_. A check inserts every partition it will touch before releasing
  /// mu_ for the merge and erases them when done; concurrent checks skip
  /// members, which is what keeps N workers off each other's partitions.
  std::set<Partition*> compacting_;
  /// Files whose deletion failed once (flushed WALs); retried after the
  /// next successful manifest commit. Guarded by mu_.
  std::vector<std::string> pending_file_gc_;
  /// True when DBImpl itself must register client I/O with the SSD model's
  /// per-class inflight gauges (q_cli): set at Init unless env_ is a SimEnv
  /// sharing model_, whose file wrappers already classify client I/O.
  bool track_client_io_ = false;

  // ---- memory arbitration ----
  /// The live memtable rotation threshold. Seeded from
  /// options_.memtable_bytes; the arbiter retunes it at runtime, so
  /// MakeRoomForWrite/GetWritePressure read THIS, never the option.
  std::atomic<size_t> memtable_limit_{0};
  /// Budget + arbiter, present only when options_.memory_budget_bytes > 0.
  /// Declared before metrics_ (the arbiter registers gauge callbacks
  /// capturing the budget); ~DBImpl stops the arbiter thread before any
  /// member is destroyed, so its callbacks never outrun metrics_ or the
  /// cache.
  std::unique_ptr<mem::MemoryBudget> mem_budget_;
  std::unique_ptr<mem::MemoryArbiter> arbiter_;

  std::vector<std::unique_ptr<Partition>> partitions_;  // ascending ranges
  uint64_t next_partition_id_ = 1;

  std::multiset<uint64_t> live_snapshots_;

  DbStatistics stats_;

  // ---- observability ----
  // Declared after everything the registered callbacks capture; wired in
  // Init(). Cached counter pointers keep cost-model accounting off the
  // registry lock (important: compaction runs under mu_, and taking the
  // registry lock there would invert the Snapshot callback lock order).
  obs::MetricsRegistry metrics_;
  obs::EventBus events_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  obs::Counter* decision_counter_ = nullptr;       // Eq. 1/2 evaluations
  obs::Counter* eq1_trigger_counter_ = nullptr;
  obs::Counter* eq2_trigger_counter_ = nullptr;
  obs::Counter* keep_set_counter_ = nullptr;       // Eq. 3 selections
  obs::Counter* wal_sync_counter_ = nullptr;
  // Write-pipeline instruments.
  obs::Counter* group_counter_ = nullptr;          // commit groups
  obs::Counter* group_write_counter_ = nullptr;    // writes committed in them
  obs::HistogramMetric* group_size_hist_ = nullptr;
  obs::Counter* slowdown_counter_ = nullptr;
  obs::Counter* stall_counter_ = nullptr;
  obs::Counter* stall_nanos_counter_ = nullptr;
  obs::Counter* bg_flush_counter_ = nullptr;
  obs::Counter* file_gc_fail_counter_ = nullptr;  // failed RemoveFile calls
  // Two-phase-commit instruments (cross-shard batches only; the fast path
  // never touches them).
  obs::Counter* txn_prepared_counter_ = nullptr;
  obs::Counter* txn_committed_counter_ = nullptr;
  obs::Counter* txn_rolled_back_counter_ = nullptr;
  // Parallel-compaction instruments: key-range slices merged by major
  // compactions and their cumulative wall time (the bench sweep's metric).
  obs::Counter* subcompaction_counter_ = nullptr;
  obs::Counter* major_wall_nanos_counter_ = nullptr;
  // Read-path instruments (bloom probes accumulated from Get's
  // ReadProbeStats; cache gauges registered over block_cache_).
  obs::Counter* bloom_check_counter_ = nullptr;
  obs::Counter* bloom_negative_counter_ = nullptr;
  obs::Counter* bloom_fp_counter_ = nullptr;
};

}  // namespace pmblade

#endif  // PMBLADE_CORE_DB_IMPL_H_
