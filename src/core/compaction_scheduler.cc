#include "core/compaction_scheduler.h"

#include <algorithm>
#include <utility>

#include "util/sync_point.h"

namespace pmblade {

CompactionScheduler::CompactionScheduler(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock()),
      logger_(options.logger != nullptr ? options.logger : NullLogger()) {
  options_.workers = std::max(options_.workers, 1);
  if (options_.metrics != nullptr) {
    queued_counter_ =
        options_.metrics->GetCounter("pmblade.compaction.sched.queued");
    completed_counter_ =
        options_.metrics->GetCounter("pmblade.compaction.sched.completed");
    failed_counter_ =
        options_.metrics->GetCounter("pmblade.compaction.sched.failed");
    retry_counter_ =
        options_.metrics->GetCounter("pmblade.compaction.sched.retries");
    dedup_counter_ =
        options_.metrics->GetCounter("pmblade.compaction.sched.deduped");
    // Live depth of the scheduler: work the flush path has handed off but
    // that has not finished yet. `this` outlives the registry's last
    // Snapshot() because DBImpl declares the scheduler before the registry.
    options_.metrics->RegisterGaugeCallback(
        "pmblade.compaction.queue_depth",
        [this] { return static_cast<double>(QueueDepth()); });
    options_.metrics->RegisterGaugeCallback(
        "pmblade.compaction.running", [this] { return running() ? 1.0 : 0.0; });
    options_.metrics->RegisterGaugeCallback(
        "pmblade.compaction.workers",
        [this] { return static_cast<double>(workers()); });
    options_.metrics->RegisterGaugeCallback(
        "pmblade.compaction.active",
        [this] { return static_cast<double>(active()); });
  }
  workers_.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompactionScheduler::~CompactionScheduler() { Shutdown(); }

void CompactionScheduler::set_check(std::function<Status()> check) {
  std::lock_guard<std::mutex> lock(mu_);
  check_ = std::move(check);
}

void CompactionScheduler::ScheduleCheck() {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || !check_) return;
    if (check_queued_) {
      if (dedup_counter_ != nullptr) dedup_counter_->Inc();
      return;
    }
    check_queued_ = true;
    queue_.push_back(Job{JobKind::kCheck, check_, nullptr});
    depth = queue_.size() + running_jobs_;
    work_cv_.notify_one();
  }
  if (queued_counter_ != nullptr) queued_counter_->Inc();
  EmitQueued(depth, JobKind::kCheck);
}

Status CompactionScheduler::RunExclusive(std::function<Status()> job) {
  auto waiter = std::make_shared<ManualWaiter>();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Aborted("compaction scheduler is shut down");
    }
    queue_.push_back(Job{JobKind::kManual, std::move(job), waiter});
    depth = queue_.size() + running_jobs_;
    work_cv_.notify_all();
  }
  if (queued_counter_ != nullptr) queued_counter_->Inc();
  EmitQueued(depth, JobKind::kManual);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return waiter->done; });
  return waiter->status;
}

void CompactionScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && running_jobs_ == 0; });
}

void CompactionScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  // Idempotent for sequential callers (DBImpl::~DBImpl then the scheduler
  // destructor); joinable() is false on the second call.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t CompactionScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_jobs_;
}

bool CompactionScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_jobs_ > 0;
}

int CompactionScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_jobs_;
}

uint64_t CompactionScheduler::checks_completed() const {
  return completed_counter_ != nullptr ? completed_counter_->Value() : 0;
}

uint64_t CompactionScheduler::checks_failed() const {
  return failed_counter_ != nullptr ? failed_counter_->Value() : 0;
}

uint64_t CompactionScheduler::retries() const {
  return retry_counter_ != nullptr ? retry_counter_->Value() : 0;
}

bool CompactionScheduler::CanPopLocked() const {
  if (queue_.empty() || exclusive_active_) return false;
  // A manual job is a pool-wide barrier: it starts only once every running
  // job has drained. While it waits at the front, no worker skips past it —
  // queue order is dispatch order.
  if (queue_.front().kind == JobKind::kManual) return running_jobs_ == 0;
  return true;
}

void CompactionScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || CanPopLocked(); });
    if (shutdown_) {
      // Queued checks are dropped (redoable); queued manual jobs must not
      // strand their waiters. Every worker runs this drain — it is
      // idempotent (later workers find the queue already empty).
      for (Job& job : queue_) {
        if (job.kind == JobKind::kManual) {
          job.waiter->status =
              Status::Aborted("compaction scheduler is shut down");
          job.waiter->done = true;
        }
      }
      queue_.clear();
      check_queued_ = false;
      done_cv_.notify_all();
      return;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    if (job.kind == JobKind::kCheck) check_queued_ = false;
    if (job.kind == JobKind::kManual) exclusive_active_ = true;
    ++running_jobs_;
    const int failure_streak = consecutive_failures_;
    lock.unlock();

    PMBLADE_SYNC_POINT("CompactionScheduler::BeforeJob");
    EmitStart(job.kind);
    const uint64_t start_nanos = clock_->NowNanos();
    Status s = job.fn();
    EmitEnd(job.kind, s, start_nanos, failure_streak);
    PMBLADE_SYNC_POINT("CompactionScheduler::AfterJob");

    if (s.ok()) {
      if (completed_counter_ != nullptr) completed_counter_->Inc();
    } else if (failed_counter_ != nullptr) {
      failed_counter_->Inc();
    }

    lock.lock();
    --running_jobs_;
    if (job.kind == JobKind::kManual) {
      exclusive_active_ = false;
      job.waiter->status = s;
      job.waiter->done = true;
    } else if (s.ok()) {
      consecutive_failures_ = 0;
    } else {
      // Retryable by design: log it, count it, and re-enqueue — bounded so
      // a persistently failing env does not hot-loop. After the cap the
      // check is parked until the next flush schedules a fresh one (which
      // gets exactly one attempt while the failure streak persists). The
      // streak belongs to the check CHAIN, not this worker — any concurrent
      // check that succeeds resets it, so a poisoned partition's failures
      // never park work that is still making progress elsewhere.
      ++consecutive_failures_;
      PMBLADE_WARN(logger_,
                   "background compaction check failed (attempt %d/%d): %s",
                   consecutive_failures_, options_.retry_limit + 1,
                   s.ToString().c_str());
      if (consecutive_failures_ <= options_.retry_limit && !shutdown_ &&
          !check_queued_ && check_) {
        check_queued_ = true;
        queue_.push_back(Job{JobKind::kCheck, check_, nullptr});
        if (retry_counter_ != nullptr) retry_counter_->Inc();
      }
    }
    // Dispatch eligibility changed (a barrier may have lifted, or a retry
    // was queued): wake siblings as well as waiters.
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
}

void CompactionScheduler::EmitQueued(size_t depth, JobKind kind) {
  obs::EventBus* bus = options_.event_bus;
  if (bus == nullptr || !bus->active()) return;
  bus->Emit(obs::Event(obs::EventType::kCompactionQueued, clock_->NowNanos())
                .With("queue_depth", static_cast<double>(depth))
                .With("manual", kind == JobKind::kManual ? 1.0 : 0.0));
}

void CompactionScheduler::EmitStart(JobKind kind) {
  obs::EventBus* bus = options_.event_bus;
  if (bus == nullptr || !bus->active()) return;
  bus->Emit(obs::Event(obs::EventType::kCompactionStart, clock_->NowNanos())
                .With("manual", kind == JobKind::kManual ? 1.0 : 0.0));
}

void CompactionScheduler::EmitEnd(JobKind kind, const Status& status,
                                  uint64_t start_nanos, int failure_streak) {
  obs::EventBus* bus = options_.event_bus;
  if (bus == nullptr || !bus->active()) return;
  const uint64_t now = clock_->NowNanos();
  bus->Emit(obs::Event(obs::EventType::kCompactionEnd, now)
                .With("manual", kind == JobKind::kManual ? 1.0 : 0.0)
                .With("ok", status.ok() ? 1.0 : 0.0)
                .With("duration_nanos", static_cast<double>(now - start_nanos))
                .With("retries", static_cast<double>(failure_streak)));
}

}  // namespace pmblade
