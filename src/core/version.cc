#include "core/version.h"

#include "compaction/merging_iterator.h"

namespace pmblade {

namespace {

class RunIterator final : public Iterator {
 public:
  RunIterator(const InternalKeyComparator* icmp, std::vector<L0TableRef> run)
      : icmp_(icmp), run_(std::move(run)) {}

  bool Valid() const override {
    return table_iter_ != nullptr && table_iter_->Valid();
  }

  void SeekToFirst() override {
    index_ = 0;
    InitTableIter();
    if (table_iter_ != nullptr) table_iter_->SeekToFirst();
    SkipEmptyForward();
  }

  void SeekToLast() override {
    index_ = run_.empty() ? 0 : run_.size() - 1;
    InitTableIter();
    if (table_iter_ != nullptr) table_iter_->SeekToLast();
    SkipEmptyBackward();
  }

  void Seek(const Slice& target) override {
    // First table whose largest >= target.
    size_t lo = 0, hi = run_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (icmp_->Compare(run_[mid]->largest(), target) < 0) lo = mid + 1;
      else hi = mid;
    }
    index_ = lo;
    InitTableIter();
    if (table_iter_ != nullptr) table_iter_->Seek(target);
    SkipEmptyForward();
  }

  void Next() override {
    table_iter_->Next();
    SkipEmptyForward();
  }

  void Prev() override {
    table_iter_->Prev();
    SkipEmptyBackward();
  }

  Slice key() const override { return table_iter_->key(); }
  Slice value() const override { return table_iter_->value(); }
  Status status() const override {
    if (table_iter_ != nullptr) return table_iter_->status();
    return status_;
  }

 private:
  void InitTableIter() {
    if (index_ < run_.size()) {
      table_iter_.reset(run_[index_]->NewIterator());
    } else {
      table_iter_.reset();
    }
  }

  void SkipEmptyForward() {
    while (table_iter_ != nullptr && !table_iter_->Valid()) {
      if (!table_iter_->status().ok()) {
        status_ = table_iter_->status();
        table_iter_.reset();
        return;
      }
      ++index_;
      InitTableIter();
      if (table_iter_ != nullptr) table_iter_->SeekToFirst();
    }
  }

  void SkipEmptyBackward() {
    while (table_iter_ != nullptr && !table_iter_->Valid()) {
      if (!table_iter_->status().ok()) {
        status_ = table_iter_->status();
        table_iter_.reset();
        return;
      }
      if (index_ == 0) {
        table_iter_.reset();
        return;
      }
      --index_;
      InitTableIter();
      if (table_iter_ != nullptr) table_iter_->SeekToLast();
    }
  }

  const InternalKeyComparator* icmp_;
  std::vector<L0TableRef> run_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> table_iter_;
  Status status_;
};

}  // namespace

namespace {

/// Concatenates the merged views of range-disjoint partitions, opening a
/// partition's tables only while the cursor is inside it.
class PartitionConcatIterator final : public Iterator {
 public:
  PartitionConcatIterator(const InternalKeyComparator* icmp,
                          std::vector<PartitionSnapshot> parts)
      : icmp_(icmp), parts_(std::move(parts)) {}

  bool Valid() const override {
    return current_ != nullptr && current_->Valid();
  }
  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }
  Status status() const override {
    if (current_ != nullptr && !current_->status().ok()) {
      return current_->status();
    }
    return status_;
  }

  void SeekToFirst() override {
    index_ = 0;
    OpenCurrent();
    if (current_ != nullptr) current_->SeekToFirst();
    SkipEmptyForward();
  }

  void SeekToLast() override {
    index_ = parts_.empty() ? 0 : parts_.size() - 1;
    OpenCurrent();
    if (current_ != nullptr) current_->SeekToLast();
    SkipEmptyBackward();
  }

  void Seek(const Slice& target) override {
    // Partition containing (or after) the target's user key.
    Slice user = ExtractUserKey(target);
    size_t lo = 0, hi = parts_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      const std::string& end = parts_[mid].end_key;
      if (!end.empty() && user.compare(Slice(end)) >= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
    OpenCurrent();
    if (current_ != nullptr) current_->Seek(target);
    SkipEmptyForward();
  }

  void Next() override {
    current_->Next();
    SkipEmptyForward();
  }

  void Prev() override {
    current_->Prev();
    SkipEmptyBackward();
  }

 private:
  void OpenCurrent() {
    if (index_ >= parts_.size()) {
      current_.reset();
      return;
    }
    const PartitionSnapshot& part = parts_[index_];
    std::vector<Iterator*> children;
    children.reserve(part.unsorted.size() + part.ssd_runs.size() + 1);
    for (const auto& table : part.unsorted) {
      children.push_back(table->NewIterator());
    }
    if (!part.sorted_run.empty()) {
      children.push_back(NewRunIterator(icmp_, part.sorted_run));
    }
    for (const auto& run : part.ssd_runs) {
      if (!run.empty()) {
        children.push_back(NewRunIterator(icmp_, run));
      }
    }
    if (children.empty()) {
      current_.reset(NewEmptyIterator());
    } else {
      current_.reset(NewMergingIterator(icmp_, std::move(children)));
    }
  }

  void SkipEmptyForward() {
    while (current_ != nullptr && !current_->Valid()) {
      if (!current_->status().ok()) {
        status_ = current_->status();
        current_.reset();
        return;
      }
      if (index_ + 1 >= parts_.size()) {
        current_.reset();
        return;
      }
      ++index_;
      OpenCurrent();
      if (current_ != nullptr) current_->SeekToFirst();
    }
  }

  void SkipEmptyBackward() {
    while (current_ != nullptr && !current_->Valid()) {
      if (!current_->status().ok()) {
        status_ = current_->status();
        current_.reset();
        return;
      }
      if (index_ == 0) {
        current_.reset();
        return;
      }
      --index_;
      OpenCurrent();
      if (current_ != nullptr) current_->SeekToLast();
    }
  }

  const InternalKeyComparator* icmp_;
  std::vector<PartitionSnapshot> parts_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> current_;
  Status status_;
};

}  // namespace

Iterator* NewPartitionConcatIterator(const InternalKeyComparator* icmp,
                                     std::vector<PartitionSnapshot> parts) {
  return new PartitionConcatIterator(icmp, std::move(parts));
}

Iterator* NewRunIterator(const InternalKeyComparator* icmp,
                         std::vector<L0TableRef> run) {
  if (run.empty()) return NewEmptyIterator();
  if (run.size() == 1) return run[0]->NewIterator();
  return new RunIterator(icmp, std::move(run));
}

Status RunGet(const std::vector<L0TableRef>& run,
              const InternalKeyComparator& icmp, const LookupKey& lkey,
              std::string* value, bool* found, Status* result_status,
              ReadProbeStats* probe) {
  *found = false;
  if (run.empty()) return Status::OK();
  // First table whose largest user key >= probe.
  const Comparator* ucmp = icmp.user_comparator();
  size_t lo = 0, hi = run.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (ucmp->Compare(ExtractUserKey(run[mid]->largest()), lkey.user_key()) <
        0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == run.size()) return Status::OK();
  return L0TableGet(*run[lo], icmp, lkey, value, found, result_status, probe);
}

}  // namespace pmblade
