// pmblade::DB — the public API of the PM-Blade storage engine.
//
// A DB is a partitioned LSM-tree whose level-0 lives in (simulated)
// persistent memory: writes land in a DRAM memtable backed by a WAL; minor
// compaction flushes memtable segments to PM tables per partition; internal
// compaction keeps level-0 sorted and deduplicated on cost grounds
// (Eqs. 1-2); major compaction moves the cold partitions' data to level-1
// SSTables on the SSD while keeping the hot partitions in PM (Eq. 3),
// executed by the coroutine compaction engine.

#ifndef PMBLADE_CORE_DB_H_
#define PMBLADE_CORE_DB_H_

#include <memory>
#include <string>

#include "core/kv_engine.h"
#include "core/options.h"
#include "core/statistics.h"
#include "memtable/write_batch.h"
#include "util/iterator.h"

namespace pmblade {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class DB : public KvEngine {
 public:
  /// Opens (creating or recovering) the database rooted at `dbname`.
  static Status Open(const Options& options, const std::string& dbname,
                     std::unique_ptr<DB>* db);

  ~DB() override = default;

  // ---- writes ----
  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* batch) = 0;

  // ---- reads ----
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;
  /// Iterator over live (user key, value) pairs at the read snapshot.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  // ---- snapshots ----
  virtual uint64_t GetSnapshot() = 0;
  virtual void ReleaseSnapshot(uint64_t snapshot) = 0;

  // ---- maintenance ----
  /// Flushes the memtable to level-0 (minor compaction).
  virtual Status FlushMemTable() = 0;
  /// Forces internal compaction of every partition with unsorted tables.
  virtual Status CompactLevel0() = 0;
  /// Forces major compaction (level-0 -> level-1); when `respect_cost_model`
  /// the Eq. 3 retained set stays in PM, otherwise everything moves down.
  virtual Status CompactToLevel1(bool respect_cost_model) = 0;

  // ---- introspection ----
  virtual const DbStatistics& statistics() const = 0;
  virtual DbStatistics& statistics() = 0;
  /// Named properties: "pmblade.l0-bytes", "pmblade.l1-bytes",
  /// "pmblade.num-partitions", "pmblade.pm-used-bytes",
  /// "pmblade.num-unsorted-tables", "pmblade.num-sorted-tables".
  virtual bool GetProperty(const std::string& property, uint64_t* value) = 0;
  /// Instantaneous write-path backpressure state (see WritePressure).
  /// Cheap — one short mutex hold — so admission controllers may poll it
  /// per request. Also exposed as the "pmblade.write-pressure" property.
  /// On a sharded DB this is the MAX across shards (the box-level view);
  /// admission control should prefer the keyed overload below so one hot
  /// shard cannot shed traffic bound for idle shards.
  virtual WritePressure GetWritePressure() = 0;

  // ---- sharding ----
  /// Number of independent engine shards behind this DB (1 for the classic
  /// single-DBImpl engine).
  virtual uint32_t num_shards() const { return 1; }
  /// Backpressure of the shard `key` routes to. On the single-shard engine
  /// this is just GetWritePressure().
  virtual WritePressure GetWritePressure(const Slice& key) {
    (void)key;
    return GetWritePressure();
  }
  /// Backpressure of one shard by index (for INFO / metrics breakdown).
  virtual WritePressure GetShardWritePressure(uint32_t shard) {
    (void)shard;
    return GetWritePressure();
  }
  /// The engine-wide metrics registry backing the stats exporters.
  /// External subsystems (the RESP server) register their own
  /// counters/gauges/histograms here so one snapshot covers the whole
  /// process. Never nullptr after Open.
  virtual obs::MetricsRegistry* metrics_registry() = 0;
  /// String-valued properties:
  ///   "pmblade.stats.json"       — full metrics snapshot + recent trace
  ///                                events as one JSON document,
  ///   "pmblade.stats.prometheus" — the same metrics in Prometheus text
  ///                                exposition format,
  ///   "pmblade.stats"            — human-readable DbStatistics summary,
  ///   "pmblade.trace.json"       — recent engine events as JSON lines.
  virtual bool GetProperty(const std::string& property,
                           std::string* value) = 0;

  // ---- KvEngine facade (latest-snapshot convenience) ----
  Status Put(const Slice& key, const Slice& value) override {
    return Put(WriteOptions(), key, value);
  }
  Status Delete(const Slice& key) override {
    return Delete(WriteOptions(), key);
  }
  Status Get(const Slice& key, std::string* value) override {
    return Get(ReadOptions(), key, value);
  }
  Iterator* NewScanIterator() override { return NewIterator(ReadOptions()); }
  Status Flush() override { return FlushMemTable(); }
  std::string Name() const override { return "pmblade"; }
};

/// Destroys the database rooted at `dbname` (files + PM pool).
Status DestroyDB(const Options& options, const std::string& dbname);

}  // namespace pmblade

#endif  // PMBLADE_CORE_DB_H_
