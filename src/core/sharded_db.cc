#include "core/sharded_db.h"

#include <algorithm>
#include <cstdlib>

#include <condition_variable>
#include <set>

#include "compaction/merging_iterator.h"
#include "obs/exporter.h"
#include "util/comparator.h"
#include "util/sync_point.h"

namespace pmblade {

namespace {

/// Splits one WriteBatch into per-shard sub-batches, preserving op order
/// within each shard (order across shards is immaterial: keyspaces are
/// disjoint under hash routing).
class ShardSplitter final : public WriteBatch::Handler {
 public:
  ShardSplitter(std::vector<WriteBatch>* subs, uint32_t num_shards)
      : subs_(subs), num_shards_(num_shards) {}

  void Put(const Slice& key, const Slice& value) override {
    (*subs_)[ShardedDB::ShardOfKey(key, num_shards_)].Put(key, value);
  }
  void Delete(const Slice& key) override {
    (*subs_)[ShardedDB::ShardOfKey(key, num_shards_)].Delete(key);
  }

 private:
  std::vector<WriteBatch>* subs_;
  uint32_t num_shards_;
};

/// "pmblade.shard.<i>.<suffix>" -> (i, "pmblade.<suffix>").
bool ParseShardProperty(const std::string& property, uint32_t num_shards,
                        uint32_t* shard, std::string* rest) {
  static constexpr char kPrefix[] = "pmblade.shard.";
  static constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (property.rfind(kPrefix, 0) != 0) return false;
  const size_t dot = property.find('.', kPrefixLen);
  if (dot == std::string::npos || dot == kPrefixLen) return false;
  uint64_t index = 0;
  for (size_t i = kPrefixLen; i < dot; ++i) {
    if (property[i] < '0' || property[i] > '9') return false;
    index = index * 10 + (property[i] - '0');
  }
  if (index >= num_shards) return false;
  *shard = static_cast<uint32_t>(index);
  *rest = "pmblade." + property.substr(dot + 1);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

uint32_t ShardedDB::ShardOfKey(const Slice& key, uint32_t num_shards) {
  // FNV-1a 64: cheap, stable across platforms (the shard of a key is part
  // of the on-disk contract — see the SHARDS marker).
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); ++i) {
    hash ^= static_cast<unsigned char>(key.data()[i]);
    hash *= 1099511628211ull;
  }
  return static_cast<uint32_t>(hash % num_shards);
}

std::string ShardedDB::ShardPmPoolPath(const std::string& base,
                                       uint32_t shard) {
  return base + ".shard-" + std::to_string(shard);
}

std::string ShardedDB::ShardDirName(const std::string& dbname,
                                    uint32_t shard) {
  return dbname + "/shard-" + std::to_string(shard);
}

// ---------------------------------------------------------------------------
// Open / close
// ---------------------------------------------------------------------------

ShardedDB::ShardedDB(const Options& options, const std::string& dbname)
    : options_(options), dbname_(dbname) {}

ShardedDB::~ShardedDB() {
  // Join the arbiter thread before any member it touches (the shards'
  // quotas, the shared cache, the facade registry) is destroyed.
  if (arbiter_ != nullptr) arbiter_->Stop();
  // Last chance to retire committed fences whose markers are already
  // durable; the rest replay at the next open and are forgotten by its
  // resolution pass.
  if (!shards_.empty()) DrainForgettableTxns();
  // Fan-out tasks capture shards; join them first.
  fanout_pool_.reset();
  // Shards read through shared_cache_; drop them while it is still alive
  // (declaration order already guarantees this — made explicit here).
  shards_.clear();
}

Status ShardedDB::Init() {
  PMBLADE_RETURN_IF_ERROR(options_.Sanitize());
  env_ = options_.env;

  if (env_->FileExists(dbname_) && options_.error_if_exists) {
    return Status::InvalidArgument(dbname_ + " already exists");
  }
  if (!env_->FileExists(dbname_) && !options_.create_if_missing) {
    return Status::NotFound(dbname_ + " does not exist");
  }
  PMBLADE_RETURN_IF_ERROR(env_->CreateDir(dbname_));
  PMBLADE_RETURN_IF_ERROR(CheckOrPinShardCount());

  if (options_.shared_block_cache == nullptr &&
      options_.block_cache_bytes > 0) {
    shared_cache_.reset(new BlockCache(options_.block_cache_bytes));
  }
  BlockCache* cache = options_.shared_block_cache != nullptr
                          ? options_.shared_block_cache
                          : shared_cache_.get();

  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    Options shard_opts = options_;
    shard_opts.num_shards = 1;
    shard_opts.shared_block_cache = cache;
    // One arbiter over every shard (below), not one per shard.
    shard_opts.memory_budget_bytes = 0;
    // Existence checks happened at the facade level; shard directories
    // come and go with it.
    shard_opts.error_if_exists = false;
    shard_opts.create_if_missing = true;
    if (!options_.pm_pool_path.empty()) {
      shard_opts.pm_pool_path = ShardPmPoolPath(options_.pm_pool_path, i);
    }
    auto shard =
        std::make_unique<DBImpl>(shard_opts, ShardDirName(dbname_, i));
    PMBLADE_RETURN_IF_ERROR(shard->Init());
    shards_.push_back(std::move(shard));
  }

  RegisterAggregatedMetrics();
  if (options_.memory_budget_bytes > 0) {
    PMBLADE_RETURN_IF_ERROR(SetUpSharedArbiter());
  }

  // Cross-shard write fan-out + 2PC bookkeeping. A wave runs N-1 shard ops
  // on the pool (the caller runs the last inline), and pool threads BLOCK
  // inside the target shard's group commit — so a pool sized for one wave
  // serializes concurrent writers' waves behind each other. Provision for
  // several in-flight waves; beyond that, excess waves ride the shards'
  // own group commit batching anyway.
  fanout_pool_.reset(new ThreadPool(static_cast<int>(
      std::min<uint32_t>(4 * (options_.num_shards - 1), 32))));
  txn_in_doubt_counter_ = metrics_.GetCounter("pmblade.txn.in_doubt");
  txn_resolved_commit_counter_ =
      metrics_.GetCounter("pmblade.txn.resolved_commit");
  txn_resolved_rollback_counter_ =
      metrics_.GetCounter("pmblade.txn.resolved_rollback");
  // Resolve transactions a crash left prepared-but-undecided, and seed the
  // txn-id allocator past everything the shards replayed.
  PMBLADE_RETURN_IF_ERROR(ResolveInDoubtTxns());
  return Status::OK();
}

Status ShardedDB::CheckOrPinShardCount() {
  const std::string marker = dbname_ + "/SHARDS";
  if (env_->FileExists(marker)) {
    std::string data;
    PMBLADE_RETURN_IF_ERROR(ReadFileToString(env_, marker, &data));
    const unsigned long pinned = std::strtoul(data.c_str(), nullptr, 10);
    if (pinned != options_.num_shards) {
      return Status::InvalidArgument(
          dbname_ + " was created with num_shards=" + std::to_string(pinned) +
          "; reopening with num_shards=" +
          std::to_string(options_.num_shards) + " would mis-route keys");
    }
    return Status::OK();
  }
  return WriteStringToFile(env_, Slice(std::to_string(options_.num_shards)),
                           marker);
}

Status ShardedDB::SetUpSharedArbiter() {
  const uint64_t total = options_.memory_budget_bytes;
  const uint64_t n = shards_.size();
  uint64_t floors[mem::kNumComponents];
  uint64_t initial[mem::kNumComponents];
  // Same shape as DBImpl's embedded arbiter, scaled: the memtable and
  // keep-set components cover ALL shards (apply splits them evenly), the
  // cache component is the one shared cache.
  floors[mem::kMemtable] = std::max<uint64_t>(4096 * n, total / 32);
  floors[mem::kBlockCache] =
      shared_cache_ != nullptr ? std::max<uint64_t>(64 << 10, total / 32) : 0;
  floors[mem::kKeepSet] = 4096;
  initial[mem::kMemtable] = static_cast<uint64_t>(options_.memtable_bytes) * n;
  initial[mem::kBlockCache] =
      shared_cache_ != nullptr ? options_.block_cache_bytes : 0;
  initial[mem::kKeepSet] = options_.cost.tau_t * n;
  mem_budget_.reset(new mem::MemoryBudget(total, floors, initial));

  auto apply = [this](int component, uint64_t target) {
    const uint64_t n_shards = shards_.size();
    switch (component) {
      case mem::kMemtable: {
        // Even split; the 4 KiB clamp keeps a pathological split from
        // wedging a shard's write path.
        const uint64_t per = std::max<uint64_t>(target / n_shards, 4096);
        for (auto& shard : shards_) {
          shard->SetMemtableLimit(static_cast<size_t>(per));
        }
        break;
      }
      case mem::kBlockCache:
        if (shared_cache_ != nullptr) shared_cache_->SetCapacity(target);
        break;
      case mem::kKeepSet: {
        const uint64_t per = std::max<uint64_t>(target / n_shards, 1);
        for (auto& shard : shards_) shard->SetDynamicTauT(per);
        break;
      }
    }
  };
  for (int c = 0; c < mem::kNumComponents; ++c) {
    apply(c, mem_budget_->target(c));
  }

  mem::ArbiterOptions aopts;
  aopts.interval_ms = options_.arbiter_interval_ms;
  aopts.clock = options_.clock;
  aopts.metrics = &metrics_;
  aopts.logger = options_.logger;
  arbiter_.reset(new mem::MemoryArbiter(
      aopts, mem_budget_.get(),
      [this] {
        mem::ArbiterInputs in;
        for (auto& shard : shards_) {
          const DbStatistics& stats =
              static_cast<const DBImpl&>(*shard).statistics();
          in.reads += stats.total_reads();
          in.reads_ssd_l1 += stats.reads(ReadSource::kSsdLevel1);
          in.writes += stats.writes();
          in.flushes += stats.flushes();
          uint64_t v = 0;
          if (shard->GetProperty("pmblade.bloom-checks", &v)) {
            in.bloom_checks += v;
          }
          if (shard->GetProperty("pmblade.bloom-negatives", &v)) {
            in.bloom_negatives += v;
          }
          if (shard->GetProperty("pmblade.bloom-false-positives", &v)) {
            in.bloom_false_positives += v;
          }
          if (shard->GetProperty("pmblade.write-slowdowns", &v)) {
            in.slowdowns += v;
          }
          if (shard->GetProperty("pmblade.write-stalls", &v)) in.stalls += v;
        }
        if (shared_cache_ != nullptr) {
          in.cache_hits = shared_cache_->hits();
          in.cache_misses = shared_cache_->misses();
        }
        return in;
      },
      apply));
  arbiter_->Start();
  return Status::OK();
}

void ShardedDB::RegisterAggregatedMetrics() {
  metrics_.RegisterGaugeCallback("pmblade.shards", [this] {
    return static_cast<double>(shards_.size());
  });
  // Splice every shard's registry into facade snapshots: a
  // pmblade.shard.<i>.* breakdown plus cross-shard aggregates under the
  // original names (counters/histograms sum; gauges sum too — sizes and
  // depths add up across shards). Metrics over a process-wide resource
  // (the shared block cache; a caller-shared SSD model) are identical in
  // every shard's registry, so the first shard's value stands instead of
  // an N-fold sum.
  const bool shared_ssd = options_.ssd_model != nullptr;
  metrics_.RegisterSnapshotProvider(
      [this, shared_ssd](std::vector<obs::MetricSample>* out) {
        std::map<std::string, obs::MetricSample> agg;
        for (size_t i = 0; i < shards_.size(); ++i) {
          obs::MetricsSnapshot snap =
              shards_[i]->metrics_registry()->Snapshot(0);
          for (auto& sample : snap.samples) {
            std::string suffix = sample.name;
            static constexpr char kRoot[] = "pmblade.";
            if (suffix.rfind(kRoot, 0) == 0) {
              suffix = suffix.substr(sizeof(kRoot) - 1);
            }
            const bool shared_resource =
                sample.name.rfind("pmblade.blockcache.", 0) == 0 ||
                (shared_ssd && sample.name.rfind("pmblade.ssd.", 0) == 0);
            obs::MetricSample per_shard = sample;
            per_shard.name =
                "pmblade.shard." + std::to_string(i) + "." + suffix;
            out->push_back(std::move(per_shard));
            auto it = agg.find(sample.name);
            if (it == agg.end()) {
              agg.emplace(sample.name, std::move(sample));
            } else if (!shared_resource) {
              if (it->second.kind == obs::MetricKind::kHistogram) {
                it->second.hist.Merge(sample.hist);
                it->second.value =
                    static_cast<double>(it->second.hist.count());
              } else {
                it->second.value += sample.value;
              }
            }
          }
        }
        for (auto& [name, sample] : agg) {
          (void)name;
          out->push_back(std::move(sample));
        }
      });
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[Route(key)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[Route(key)]->Delete(options, key);
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null WriteBatch");
  }
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  std::vector<WriteBatch> subs(n);
  ShardSplitter splitter(&subs, n);
  PMBLADE_RETURN_IF_ERROR(batch->Iterate(&splitter));
  std::vector<uint32_t> participants;
  for (uint32_t i = 0; i < n; ++i) {
    if (subs[i].Count() > 0) participants.push_back(i);
  }
  if (participants.empty()) return Status::OK();
  if (participants.size() == 1) {
    // Marker-free fast path: one shard's normal group commit is already
    // atomic + durable on its own, identical to num_shards=1.
    const uint32_t only = participants.front();
    return shards_[only]->Write(options, &subs[only]);
  }
  if (!options_.atomic_cross_shard_batches) {
    return WriteLegacy(options, subs, participants);
  }
  return WriteAtomic(options, subs, participants);
}

void ShardedDB::RunOnShards(const std::vector<uint32_t>& ids,
                            const std::function<void(uint32_t)>& fn) {
  if (ids.empty()) return;
  if (ids.size() == 1 || fanout_pool_ == nullptr) {
    for (uint32_t id : ids) fn(id);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = ids.size() - 1;
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    const uint32_t id = ids[i];
    fanout_pool_->Submit([&mu, &cv, &remaining, &fn, id] {
      fn(id);
      // Decrement + notify under the lock: the waiter owns the stack these
      // live on and must not unblock before the notify completes.
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  fn(ids.back());
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

Status ShardedDB::WriteLegacy(const WriteOptions& options,
                              std::vector<WriteBatch>& subs,
                              const std::vector<uint32_t>& participants) {
  // Independent per-shard commits: no atomicity across shards (a crash
  // between shard syncs can surface a torn batch), but every sub-batch is
  // applied even after a failure, and the whole fan-out pays one parallel
  // WAL wave instead of N sequential ones.
  std::vector<Status> statuses(shards_.size());
  RunOnShards(participants, [&](uint32_t shard) {
    statuses[shard] = shards_[shard]->Write(options, &subs[shard]);
  });
  Status result;
  for (uint32_t shard : participants) {
    if (result.ok() && !statuses[shard].ok()) result = statuses[shard];
  }
  return result;
}

Status ShardedDB::WriteAtomic(const WriteOptions& options,
                              std::vector<WriteBatch>& subs,
                              const std::vector<uint32_t>& participants) {
  const uint64_t txn_id =
      next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Status> statuses(shards_.size());

  // Phase 1: every participant appends + fsyncs a prepare record holding
  // its sub-batch — in parallel, so the wave costs max(shard fsync).
  RunOnShards(participants, [&](uint32_t shard) {
    statuses[shard] =
        shards_[shard]->PrepareTxn(options, txn_id, participants,
                                   &subs[shard]);
  });
  Status prepare_status;
  for (uint32_t shard : participants) {
    if (prepare_status.ok() && !statuses[shard].ok()) {
      prepare_status = statuses[shard];
    }
  }
  PMBLADE_SYNC_POINT("ShardedDB::Write:AfterPrepare");
  if (!prepare_status.ok()) {
    // Abort: rollback markers everywhere (harmless on shards whose prepare
    // never landed). Durability is lazy — recovery defaults a missing
    // prepare to rollback anyway — but note the indeterminate window: if
    // every prepare actually reached disk despite the error, a crash
    // before the rollback markers sync can resolve this txn COMMITTED.
    RunOnShards(participants, [&](uint32_t shard) {
      shards_[shard]->RollbackTxn(WriteOptions(), txn_id);
    });
    return prepare_status;
  }

  // Phase 2: tiny commit markers, sequence assignment + publish — also in
  // parallel. No rollback from here on: with every prepare durable the txn
  // is decided, and a shard that failed its marker will be resolved
  // COMMITTED from its still-buffered prepare at the next open.
  //
  // The markers are deliberately NOT fsynced even for sync writes: the
  // durable prepares on every participant already decide the txn (a crash
  // that loses every marker still resolves to commit), so a second fsync
  // wave here would double the sync cost of a cross-shard batch for no
  // durability gain. Markers become durable on the next natural sync —
  // group-commit fsync, WAL rotation — which only delays fence retirement.
  WriteOptions commit_options = options;
  commit_options.sync = false;
  RunOnShards(participants, [&](uint32_t shard) {
    statuses[shard] = shards_[shard]->CommitTxn(commit_options, txn_id);
  });
  Status result;
  for (uint32_t shard : participants) {
    if (result.ok() && !statuses[shard].ok()) result = statuses[shard];
  }

  // Retire the fence once every participant's marker is durable; until
  // then WAL rotation keeps carrying the commit evidence siblings might
  // need at recovery.
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    PendingForget pending;
    pending.txn_id = txn_id;
    pending.participants = participants;
    pending_forget_.push_back(std::move(pending));
  }
  DrainForgettableTxns();
  return result;
}

void ShardedDB::DrainForgettableTxns() {
  std::vector<PendingForget> pending;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    pending.swap(pending_forget_);
  }
  std::vector<PendingForget> keep;
  for (auto& p : pending) {
    bool durable = true;
    for (uint32_t shard : p.participants) {
      if (!shards_[shard]->TxnMarkerDurable(p.txn_id)) {
        durable = false;
        break;
      }
    }
    if (durable) {
      for (uint32_t shard : p.participants) {
        shards_[shard]->ForgetTxn(p.txn_id);
      }
    } else {
      keep.push_back(std::move(p));
    }
  }
  if (!keep.empty()) {
    std::lock_guard<std::mutex> lock(txn_mu_);
    pending_forget_.insert(pending_forget_.begin(),
                           std::make_move_iterator(keep.begin()),
                           std::make_move_iterator(keep.end()));
  }
}

Status ShardedDB::ResolveInDoubtTxns() {
  // Union of every shard's in-doubt set (the participant list rides in the
  // prepare record, so any surviving prepare names the whole group).
  std::map<uint64_t, std::vector<uint32_t>> in_doubt;
  uint64_t max_txn = 0;
  for (auto& shard : shards_) {
    max_txn = std::max(max_txn, shard->MaxSeenTxnId());
    for (auto& txn : shard->GetInDoubtTxns()) {
      auto& parts = in_doubt[txn.txn_id];
      if (parts.empty()) parts = txn.participants;
    }
  }
  next_txn_id_.store(max_txn + 1, std::memory_order_relaxed);

  WriteOptions sync_opts;
  sync_opts.sync = true;
  Status result;
  for (auto& [txn_id, participants] : in_doubt) {
    txn_in_doubt_counter_->Inc();
    // Decision rules, in order: commit evidence anywhere => COMMIT;
    // a rollback marker => ROLL BACK; any participant with no trace (its
    // always-fsynced prepare is missing, so the commit wave cannot have
    // started) => ROLL BACK; all participants prepared => COMMIT (the
    // batch was fully durable, exactly the state phase 2 acts from).
    bool any_committed = false;
    bool any_rolled_back = false;
    bool any_unknown = false;
    for (uint32_t shard : participants) {
      if (shard >= shards_.size()) {
        any_unknown = true;
        continue;
      }
      switch (shards_[shard]->QueryTxn(txn_id)) {
        case DBImpl::TxnPeerState::kCommitted:
          any_committed = true;
          break;
        case DBImpl::TxnPeerState::kRolledBack:
          any_rolled_back = true;
          break;
        case DBImpl::TxnPeerState::kUnknown:
          any_unknown = true;
          break;
        case DBImpl::TxnPeerState::kPrepared:
          break;
      }
    }
    const bool commit = any_committed || (!any_rolled_back && !any_unknown);
    for (uint32_t shard : participants) {
      if (shard >= shards_.size()) continue;
      if (shards_[shard]->QueryTxn(txn_id) !=
          DBImpl::TxnPeerState::kPrepared) {
        continue;
      }
      // Resolution markers are always fsynced: the verdict must not flip
      // across a second crash.
      Status s = commit ? shards_[shard]->CommitTxn(sync_opts, txn_id)
                        : shards_[shard]->RollbackTxn(sync_opts, txn_id);
      if (result.ok() && !s.ok()) result = s;
    }
    (commit ? txn_resolved_commit_counter_ : txn_resolved_rollback_counter_)
        ->Inc();
  }
  PMBLADE_RETURN_IF_ERROR(result);

  // Every verdict is durable now; retained fences and replay evidence are
  // redundant, so drop them — the shards start with empty txn state.
  std::set<uint64_t> retained;
  for (auto& shard : shards_) {
    for (uint64_t txn_id : shard->GetRetainedTxnIds()) {
      retained.insert(txn_id);
    }
  }
  for (uint64_t txn_id : retained) {
    for (auto& shard : shards_) shard->ForgetTxn(txn_id);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads / snapshots
// ---------------------------------------------------------------------------

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  const uint32_t shard = Route(key);
  if (options.snapshot == 0) {
    return shards_[shard]->Get(options, key, value);
  }
  ReadOptions ropts = options;
  PMBLADE_RETURN_IF_ERROR(
      TranslateSnapshot(options.snapshot, shard, &ropts.snapshot));
  return shards_[shard]->Get(ropts, key, value);
}

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  std::vector<uint64_t> seqs;  // empty = read at each shard's latest
  if (options.snapshot != 0) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(options.snapshot);
    if (it == snapshots_.end()) {
      return NewErrorIterator(
          Status::InvalidArgument("unknown snapshot handle"));
    }
    seqs = it->second;
  }
  std::vector<Iterator*> children;
  children.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ReadOptions ropts = options;
    ropts.snapshot = seqs.empty() ? 0 : seqs[i];
    children.push_back(shards_[i]->NewIterator(ropts));
  }
  // Each child already yields live user keys in bytewise order, and hash
  // routing keeps the shards' keyspaces disjoint, so the plain merge IS
  // the global sorted view.
  return NewMergingIterator(BytewiseComparator(), std::move(children));
}

uint64_t ShardedDB::GetSnapshot() {
  std::vector<uint64_t> seqs;
  seqs.reserve(shards_.size());
  for (auto& shard : shards_) seqs.push_back(shard->GetSnapshot());
  std::lock_guard<std::mutex> lock(snap_mu_);
  const uint64_t handle = next_snapshot_handle_++;
  snapshots_.emplace(handle, std::move(seqs));
  return handle;
}

void ShardedDB::ReleaseSnapshot(uint64_t snapshot) {
  std::vector<uint64_t> seqs;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = snapshots_.find(snapshot);
    if (it == snapshots_.end()) return;
    seqs = std::move(it->second);
    snapshots_.erase(it);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->ReleaseSnapshot(seqs[i]);
  }
}

Status ShardedDB::TranslateSnapshot(uint64_t handle, uint32_t shard,
                                    uint64_t* shard_snapshot) const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  auto it = snapshots_.find(handle);
  if (it == snapshots_.end()) {
    return Status::NotFound("unknown snapshot handle");
  }
  *shard_snapshot = it->second[shard];
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

Status ShardedDB::FlushMemTable() {
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->FlushMemTable();
    if (result.ok() && !s.ok()) result = s;
  }
  // Rotation just fsynced every shard's WAL, so any fence still waiting on
  // marker durability is ready to retire.
  DrainForgettableTxns();
  return result;
}

Status ShardedDB::CompactLevel0() {
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->CompactLevel0();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Status ShardedDB::CompactToLevel1(bool respect_cost_model) {
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->CompactToLevel1(respect_cost_model);
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void ShardedDB::RefreshAggregateStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  agg_stats_.Reset();
  for (const auto& shard : shards_) {
    agg_stats_.AddFrom(static_cast<const DBImpl&>(*shard).statistics());
  }
}

const DbStatistics& ShardedDB::statistics() const {
  RefreshAggregateStats();
  return agg_stats_;
}

DbStatistics& ShardedDB::statistics() {
  RefreshAggregateStats();
  return agg_stats_;
}

WritePressure ShardedDB::GetWritePressure() {
  WritePressure worst = WritePressure::kNone;
  for (auto& shard : shards_) {
    WritePressure p = shard->GetWritePressure();
    if (static_cast<int>(p) > static_cast<int>(worst)) worst = p;
    if (worst == WritePressure::kStall) break;
  }
  return worst;
}

WritePressure ShardedDB::GetWritePressure(const Slice& key) {
  return shards_[Route(key)]->GetWritePressure();
}

WritePressure ShardedDB::GetShardWritePressure(uint32_t shard) {
  if (shard >= shards_.size()) return WritePressure::kNone;
  return shards_[shard]->GetWritePressure();
}

bool ShardedDB::GetProperty(const std::string& property, uint64_t* value) {
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  if (property == "pmblade.num-shards") {
    *value = n;
    return true;
  }
  if (property == "pmblade.write-pressure") {
    *value = static_cast<uint64_t>(GetWritePressure());
    return true;
  }
  // Per-shard drill-down: "pmblade.shard.<i>.<prop>".
  uint32_t shard = 0;
  std::string rest;
  if (ParseShardProperty(property, n, &shard, &rest)) {
    return shards_[shard]->GetProperty(rest, value);
  }
  // Process-wide resources: one value, not a per-shard sum.
  if (property == "pmblade.blockcache-charge") {
    *value = shared_cache_ != nullptr ? shared_cache_->TotalCharge() : 0;
    return true;
  }
  if (property == "pmblade.blockcache-capacity") {
    *value = shared_cache_ != nullptr ? shared_cache_->capacity() : 0;
    return true;
  }
  if (property == "pmblade.mem-rebalances") {
    *value = arbiter_ != nullptr ? arbiter_->rebalances() : 0;
    return true;
  }
  // Facade-level (NOT a per-shard sum: each facade handle pins one
  // snapshot per shard, so summing would overcount by N).
  if (property == "pmblade.open-snapshots") {
    std::lock_guard<std::mutex> lock(snap_mu_);
    *value = snapshots_.size();
    return true;
  }
  if (property == "pmblade.txn-in-doubt") {
    *value = txn_in_doubt_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-resolved-commit") {
    *value = txn_resolved_commit_counter_->Value();
    return true;
  }
  if (property == "pmblade.txn-resolved-rollback") {
    *value = txn_resolved_rollback_counter_->Value();
    return true;
  }
  // Depth is a maximum across shards, not a sum.
  if (property == "pmblade.max-ssd-level") {
    uint64_t deepest = 0;
    for (auto& s : shards_) {
      uint64_t v = 0;
      if (!s->GetProperty(property, &v)) return false;
      deepest = std::max(deepest, v);
    }
    *value = deepest;
    return true;
  }
  // Everything else sums across shards (counters and sizes both add up;
  // pmblade.memtable-limit becomes the combined write quota).
  uint64_t total = 0;
  for (auto& s : shards_) {
    uint64_t v = 0;
    if (!s->GetProperty(property, &v)) return false;
    total += v;
  }
  *value = total;
  return true;
}

bool ShardedDB::GetProperty(const std::string& property, std::string* value) {
  if (property == "pmblade.stats.json") {
    obs::MetricsSnapshot snapshot =
        metrics_.Snapshot(options_.clock->NowNanos());
    *value = obs::ExportJson(snapshot, {});
    return true;
  }
  if (property == "pmblade.stats.prometheus") {
    *value = obs::ExportPrometheus(metrics_.Snapshot(options_.clock->NowNanos()));
    return true;
  }
  if (property == "pmblade.stats") {
    RefreshAggregateStats();
    std::lock_guard<std::mutex> lock(stats_mu_);
    *value = agg_stats_.ToString();
    return true;
  }
  if (property == "pmblade.mem.json") {
    *value = arbiter_ != nullptr ? arbiter_->ToJson()
                                 : std::string("{\"enabled\":false}");
    return true;
  }
  if (property == "pmblade.compaction-policy") {
    // Every shard runs the same Options; shard 0 speaks for all.
    return shards_[0]->GetProperty(property, value);
  }
  if (property == "pmblade.trace.json") {
    // Concatenated per-shard traces (each line is a self-contained JSON
    // event; ordering across shards is by shard, not time).
    value->clear();
    for (auto& shard : shards_) {
      std::string part;
      if (shard->GetProperty(property, &part)) value->append(part);
    }
    return true;
  }
  uint32_t shard = 0;
  std::string rest;
  if (ParseShardProperty(property, static_cast<uint32_t>(shards_.size()),
                         &shard, &rest)) {
    return shards_[shard]->GetProperty(rest, value);
  }
  return false;
}

}  // namespace pmblade
