#include "obs/exporter.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace pmblade {
namespace obs {

namespace {

void AppendNumber(std::string* out, double value) {
  char buf[48];
  if (!std::isfinite(value)) {
    out->append("0");
  } else if (value == std::floor(value) && std::fabs(value) < 1e18) {
    snprintf(buf, sizeof(buf), "%.0f", value);
    out->append(buf);
  } else {
    snprintf(buf, sizeof(buf), "%.17g", value);
    out->append(buf);
  }
}

}  // namespace

std::string ToPrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(legal ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.samples.size() * 64);
  char buf[64];
  for (const MetricSample& sample : snapshot.samples) {
    const std::string name = ToPrometheusName(sample.name);
    out += "# TYPE " + name + " " + MetricKindName(sample.kind) + "\n";
    switch (sample.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += name + " ";
        AppendNumber(&out, sample.value);
        out += "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          uint64_t count = sample.hist.bucket_count(i);
          if (count == 0) continue;
          cumulative += count;
          snprintf(buf, sizeof(buf), "{le=\"%llu\"} %llu\n",
                   static_cast<unsigned long long>(Histogram::BucketLimit(i)),
                   static_cast<unsigned long long>(cumulative));
          out += name + "_bucket" + buf;
        }
        snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %llu\n",
                 static_cast<unsigned long long>(sample.hist.count()));
        out += name + "_bucket" + buf;
        out += name + "_sum ";
        AppendNumber(&out, sample.hist.sum());
        out += "\n";
        snprintf(buf, sizeof(buf), " %llu\n",
                 static_cast<unsigned long long>(sample.hist.count()));
        out += name + "_count" + buf;
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot,
                       const std::vector<Event>& events) {
  std::string out;
  out.reserve(snapshot.samples.size() * 48 + events.size() * 128);
  out += "{\"ts\":";
  AppendNumber(&out, static_cast<double>(snapshot.taken_at_nanos));
  out += ",\"metrics\":{";
  bool first = true;
  for (const MetricSample& sample : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "\"" + sample.name + "\":";
    if (sample.kind == MetricKind::kHistogram) {
      out += sample.hist.ToJson();
    } else {
      AppendNumber(&out, sample.value);
    }
  }
  out += "},\"events\":[";
  first = true;
  for (const Event& event : events) {
    if (!first) out += ",";
    first = false;
    out += event.ToJson();
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JsonLint — recursive-descent RFC 8259 validator
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Check(size_t* error_pos) {
    SkipWs();
    bool ok = Value() && (SkipWs(), pos_ == text_.size());
    if (!ok && error_pos != nullptr) *error_pos = pos_;
    return ok;
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) return false;  // unescaped control character
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    } else {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonLint(const std::string& text, size_t* error_pos) {
  return JsonChecker(text).Check(error_pos);
}

}  // namespace obs
}  // namespace pmblade
