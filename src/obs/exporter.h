// Exporters rendering a MetricsSnapshot (plus recent trace events) as
// Prometheus text exposition format or a single JSON document, and a small
// dependency-free JSON validator used by tests and tooling to check the
// exported documents.

#ifndef PMBLADE_OBS_EXPORTER_H_
#define PMBLADE_OBS_EXPORTER_H_

#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/metrics.h"

namespace pmblade {
namespace obs {

/// Maps a dotted metric name to a Prometheus-legal one: characters outside
/// [a-zA-Z0-9_:] become '_' (e.g. "pmblade.reads.memtable" ->
/// "pmblade_reads_memtable").
std::string ToPrometheusName(const std::string& name);

/// Prometheus text exposition format, version 0.0.4. Counters and gauges
/// emit one sample line each; histograms emit cumulative `_bucket` lines
/// for their non-empty buckets plus `_sum` and `_count`. Every metric gets
/// a `# TYPE` comment.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// One JSON document:
///   {"ts":..., "metrics":{"name":value|{histogram}, ...},
///    "events":[{...}, ...]}
/// Histogram metrics render via Histogram::ToJson(); `events` is always
/// present (possibly empty) so consumers can rely on the shape.
std::string ExportJson(const MetricsSnapshot& snapshot,
                       const std::vector<Event>& events);

/// Strict structural JSON validation (RFC 8259 grammar; no size limits).
/// Returns true when `text` is one complete JSON value; on failure sets
/// `*error_pos` (when non-null) to the byte offset of the first error.
bool JsonLint(const std::string& text, size_t* error_pos = nullptr);

}  // namespace obs
}  // namespace pmblade

#endif  // PMBLADE_OBS_EXPORTER_H_
