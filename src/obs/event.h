// Structured event tracing: typed engine events (flush lifecycle, cost-model
// decisions with their Eq. 1/2/3 inputs, compaction stages, I/O-gate and
// SSD queue-depth transitions) fanned out through an EventBus to
// EventListeners, with a lock-striped ring-buffer TraceRecorder that keeps
// the most recent events and dumps them as JSON lines.
//
// Cost discipline: emitting sites guard on `bus->active()` so that with no
// listeners an event costs one relaxed atomic load; events themselves are
// flat structs of (static key, double) fields with an optional pre-rendered
// JSON `detail` payload for variable-size data (e.g. per-partition Eq. 3
// scores). No emission site sits on the Get/Put hot path.

#ifndef PMBLADE_OBS_EVENT_H_
#define PMBLADE_OBS_EVENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmblade {
namespace obs {

enum class EventType : uint8_t {
  kFlushBegin = 0,
  kFlushEnd,
  /// Eq. 1/Eq. 2 evaluation for one partition, with inputs and verdict.
  kInternalDecision,
  kInternalCompactionEnd,
  kMajorCompactionBegin,
  kMajorCompactionEnd,
  /// Eq. 3 keep-set selection; per-partition scores ride in `detail`.
  kKeepSetSelected,
  kPartitionSplit,
  kWalSync,
  /// q_flush gate budget changed (coroutine flush scheduling).
  kIoGateChange,
  /// SSD model reached a new queue-depth high-water mark.
  kSsdQueueDepth,
  /// Algorithm-1 work enqueued to the background compaction scheduler.
  kCompactionQueued,
  /// A queued compaction job started running on the scheduler thread.
  kCompactionStart,
  /// A compaction job finished (fields: ok, duration_nanos, retries).
  kCompactionEnd,
  /// The memory arbiter moved budget between components; fields carry the
  /// decision (from/to/bytes), the observed pressures that drove it, and
  /// the post-move targets.
  kMemRebalance,
  /// Cross-shard two-phase commit: one event per WAL txn record appended
  /// by this shard (fields: txn_id, and for prepares the participant
  /// count / payload bytes).
  kTxnPrepare,
  kTxnCommit,
  kTxnRollback,
};

const char* EventTypeName(EventType type);

struct Event {
  static constexpr int kMaxFields = 12;

  struct Field {
    const char* key = nullptr;  // static string literal, JSON-safe
    double value = 0.0;
  };

  EventType type = EventType::kFlushBegin;
  uint64_t timestamp_nanos = 0;
  int num_fields = 0;
  Field fields[kMaxFields];
  /// Optional pre-rendered JSON value (object or array) attached under the
  /// "detail" key; empty = absent.
  std::string detail;

  Event() = default;
  Event(EventType t, uint64_t ts) : type(t), timestamp_nanos(ts) {}

  /// Appends a field; silently drops past kMaxFields. `key` must be a
  /// static, JSON-safe string literal.
  Event& With(const char* key, double value) {
    if (num_fields < kMaxFields) {
      fields[num_fields].key = key;
      fields[num_fields].value = value;
      ++num_fields;
    }
    return *this;
  }
  Event& WithDetail(std::string json) {
    detail = std::move(json);
    return *this;
  }

  /// Value of the named field, or `fallback` when absent.
  double FieldOr(const char* key, double fallback) const;

  /// One JSON object (single line, no trailing newline).
  std::string ToJson() const;
};

class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void OnEvent(const Event& event) = 0;
};

/// Fan-out hub. Listeners are invoked synchronously, in subscription order,
/// on the emitting thread. `active()` is a relaxed atomic check so that
/// emitting sites can skip building events entirely when nobody listens.
class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  void Subscribe(EventListener* listener);
  void Unsubscribe(EventListener* listener);

  bool active() const {
    return num_listeners_.load(std::memory_order_relaxed) > 0;
  }

  void Emit(const Event& event);

  uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> num_listeners_{0};
  std::atomic<uint64_t> emitted_{0};
  mutable std::mutex mu_;
  std::vector<EventListener*> listeners_;
};

/// Keeps the last `capacity` events in a ring. Lock-striped: writers take
/// only the mutex of the slot their ticket hashes to, so concurrent
/// recording from compaction workers does not serialize globally. A slot
/// whose write lost the race to a newer ticket is simply skipped on read.
class TraceRecorder : public EventListener {
 public:
  explicit TraceRecorder(size_t capacity);

  void OnEvent(const Event& event) override;

  /// The retained events, oldest first.
  std::vector<Event> Snapshot() const;

  /// JSON-lines dump of Snapshot() (one event object per line).
  std::string DumpJsonLines() const;

  size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= capacity means the ring has wrapped).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    mutable std::mutex mu;
    uint64_t ticket = 0;
    bool filled = false;
    Event event;
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace obs
}  // namespace pmblade

#endif  // PMBLADE_OBS_EVENT_H_
