#include "obs/event.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace pmblade {
namespace obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kFlushBegin:
      return "flush_begin";
    case EventType::kFlushEnd:
      return "flush_end";
    case EventType::kInternalDecision:
      return "internal_decision";
    case EventType::kInternalCompactionEnd:
      return "internal_compaction_end";
    case EventType::kMajorCompactionBegin:
      return "major_compaction_begin";
    case EventType::kMajorCompactionEnd:
      return "major_compaction_end";
    case EventType::kKeepSetSelected:
      return "keep_set_selected";
    case EventType::kPartitionSplit:
      return "partition_split";
    case EventType::kWalSync:
      return "wal_sync";
    case EventType::kIoGateChange:
      return "io_gate_change";
    case EventType::kSsdQueueDepth:
      return "ssd_queue_depth";
    case EventType::kCompactionQueued:
      return "compaction_queued";
    case EventType::kCompactionStart:
      return "compaction_start";
    case EventType::kCompactionEnd:
      return "compaction_end";
    case EventType::kMemRebalance:
      return "mem_rebalance";
    case EventType::kTxnPrepare:
      return "txn_prepare";
    case EventType::kTxnCommit:
      return "txn_commit";
    case EventType::kTxnRollback:
      return "txn_rollback";
  }
  return "unknown";
}

double Event::FieldOr(const char* key, double fallback) const {
  for (int i = 0; i < num_fields; ++i) {
    if (std::strcmp(fields[i].key, key) == 0) return fields[i].value;
  }
  return fallback;
}

namespace {

/// Appends a JSON number; integral values print without a fraction so
/// counters stay exact, and non-finite values degrade to null.
void AppendJsonNumber(std::string* out, double value) {
  char buf[48];
  if (!std::isfinite(value)) {
    out->append("null");
  } else if (value == std::floor(value) && std::fabs(value) < 1e18) {
    snprintf(buf, sizeof(buf), "%.0f", value);
    out->append(buf);
  } else {
    snprintf(buf, sizeof(buf), "%.17g", value);
    out->append(buf);
  }
}

}  // namespace

std::string Event::ToJson() const {
  std::string out;
  out.reserve(128 + detail.size());
  out += "{\"ts\":";
  AppendJsonNumber(&out, static_cast<double>(timestamp_nanos));
  out += ",\"type\":\"";
  out += EventTypeName(type);
  out += "\"";
  for (int i = 0; i < num_fields; ++i) {
    out += ",\"";
    out += fields[i].key;
    out += "\":";
    AppendJsonNumber(&out, fields[i].value);
  }
  if (!detail.empty()) {
    out += ",\"detail\":";
    out += detail;
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// EventBus
// ---------------------------------------------------------------------------

void EventBus::Subscribe(EventListener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(listener);
  num_listeners_.store(static_cast<int>(listeners_.size()),
                       std::memory_order_relaxed);
}

void EventBus::Unsubscribe(EventListener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
  num_listeners_.store(static_cast<int>(listeners_.size()),
                       std::memory_order_relaxed);
}

void EventBus::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (listeners_.empty()) return;
  emitted_.fetch_add(1, std::memory_order_relaxed);
  for (EventListener* listener : listeners_) {
    listener->OnEvent(event);
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity), slots_(new Slot[capacity_]) {}

void TraceRecorder::OnEvent(const Event& event) {
  uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A newer ticket may already have claimed this slot (the ring lapped us
  // between the fetch_add and the lock); never go backwards.
  if (slot.filled && slot.ticket > ticket) return;
  slot.ticket = ticket;
  slot.filled = true;
  slot.event = event;
}

std::vector<Event> TraceRecorder::Snapshot() const {
  uint64_t end = next_.load(std::memory_order_relaxed);
  uint64_t start = end > capacity_ ? end - capacity_ : 0;
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(end - start));
  for (uint64_t i = start; i < end; ++i) {
    const Slot& slot = slots_[i % capacity_];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled && slot.ticket == i) out.push_back(slot.event);
  }
  return out;
}

std::string TraceRecorder::DumpJsonLines() const {
  std::string out;
  for (const Event& event : Snapshot()) {
    out += event.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace pmblade
