#include "obs/metrics.h"

#include <algorithm>

namespace pmblade {
namespace obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kCounter
               ? it->second.counter.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kCounter;
  entry.counter.reset(new Counter());
  Counter* raw = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return raw;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kGauge ? it->second.gauge.get()
                                                 : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kGauge;
  entry.gauge.reset(new Gauge());
  Gauge* raw = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return raw;
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kHistogram;
  entry.histogram.reset(new HistogramMetric());
  HistogramMetric* raw = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return raw;
}

// Register*Callback never destroys previously-created owned instruments:
// callers may have cached their pointers, so instruments live as long as the
// registry. A callback takes precedence over a same-name instrument at
// snapshot time.

void MetricsRegistry::RegisterCounterCallback(const std::string& name,
                                              std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.kind = MetricKind::kCounter;
  entry.counter_fn = std::move(fn);
  entry.gauge_fn = nullptr;
  entry.histogram_fn = nullptr;
}

void MetricsRegistry::RegisterGaugeCallback(const std::string& name,
                                            std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.kind = MetricKind::kGauge;
  entry.gauge_fn = std::move(fn);
  entry.counter_fn = nullptr;
  entry.histogram_fn = nullptr;
}

void MetricsRegistry::RegisterHistogramCallback(
    const std::string& name, std::function<Histogram()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.kind = MetricKind::kHistogram;
  entry.histogram_fn = std::move(fn);
  entry.counter_fn = nullptr;
  entry.gauge_fn = nullptr;
}

void MetricsRegistry::RegisterSnapshotProvider(
    std::function<void(std::vector<MetricSample>*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot(uint64_t now_nanos) const {
  // Phase 1 (registry lock): copy names, kinds, instrument pointers and
  // callback copies. Phase 2 (no lock): evaluate. Callbacks may acquire
  // arbitrary unrelated locks (the DB mutex, the SSD model mutex) whose
  // holders in turn call GetCounter(); evaluating outside the registry lock
  // keeps the lock graph acyclic. Instruments and entries are never removed,
  // so the copied pointers stay valid for the registry's lifetime.
  struct PendingSample {
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<Histogram()> histogram_fn;
  };

  MetricsSnapshot snap;
  snap.taken_at_nanos = now_nanos;
  std::vector<PendingSample> pending;
  std::vector<std::function<void(std::vector<MetricSample>*)>> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    providers = providers_;
    snap.samples.reserve(entries_.size());
    pending.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      MetricSample sample;
      sample.name = name;
      sample.kind = entry.kind;
      snap.samples.push_back(std::move(sample));

      PendingSample p;
      p.counter = entry.counter.get();
      p.gauge = entry.gauge.get();
      p.histogram = entry.histogram.get();
      p.counter_fn = entry.counter_fn;
      p.gauge_fn = entry.gauge_fn;
      p.histogram_fn = entry.histogram_fn;
      pending.push_back(std::move(p));
    }
  }

  for (size_t i = 0; i < pending.size(); ++i) {
    MetricSample& sample = snap.samples[i];
    const PendingSample& p = pending[i];
    switch (sample.kind) {
      case MetricKind::kCounter:
        sample.value = p.counter_fn
                           ? static_cast<double>(p.counter_fn())
                           : static_cast<double>(p.counter->Value());
        break;
      case MetricKind::kGauge:
        sample.value = p.gauge_fn ? p.gauge_fn()
                                  : static_cast<double>(p.gauge->Value());
        break;
      case MetricKind::kHistogram:
        sample.hist =
            p.histogram_fn ? p.histogram_fn() : p.histogram->Snapshot();
        sample.value = static_cast<double>(sample.hist.count());
        break;
    }
  }
  if (!providers.empty()) {
    for (const auto& provider : providers) provider(&snap.samples);
    // Providers append out of order; restore the sorted-by-name contract.
    std::sort(snap.samples.begin(), snap.samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return a.name < b.name;
              });
  }
  return snap;
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace pmblade
