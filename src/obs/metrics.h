// MetricsRegistry: the engine-wide catalogue of named counters, gauges and
// histograms. Hot paths touch relaxed atomics (Counter/Gauge) or a sharded
// histogram; Snapshot() produces a consistent, name-sorted copy of every
// registered metric that the exporters (obs/exporter.h) render as JSON or
// Prometheus text.
//
// Two registration styles:
//   * Owned instruments — GetCounter/GetGauge/GetHistogram create (or look
//     up) an instrument owned by the registry; callers cache the returned
//     pointer and update it lock-free.
//   * Pull callbacks — Register*Callback attach a function evaluated at
//     Snapshot() time, used to surface pre-existing counters (DbStatistics,
//     SsdModel, PmPool) and computed gauges (q_flush, level sizes) without
//     duplicating state.
//
// Naming convention: dot-separated lowercase paths under the "pmblade."
// root, e.g. "pmblade.reads.memtable", "pmblade.compaction.internal.count",
// "pmblade.io.q_flush". The Prometheus exporter maps '.' and '-' to '_'.

#ifndef PMBLADE_OBS_METRICS_H_
#define PMBLADE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace pmblade {
namespace obs {

class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram instrument backed by ShardedHistogram so concurrent
/// observers do not serialize on one mutex.
class HistogramMetric {
 public:
  void Observe(uint64_t value) { hist_.Add(value); }
  Histogram Snapshot() const { return hist_.Merged(); }

 private:
  ShardedHistogram hist_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counters and gauges
  Histogram hist;      // kind == kHistogram only
};

struct MetricsSnapshot {
  uint64_t taken_at_nanos = 0;
  std::vector<MetricSample> samples;  // sorted by name

  const MetricSample* Find(const std::string& name) const {
    for (const auto& sample : samples) {
      if (sample.name == name) return &sample;
    }
    return nullptr;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Look up or create an owned instrument. The returned pointer is stable
  /// for the registry's lifetime. Returns nullptr if `name` is already
  /// registered with a different kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  /// Pull-style metrics evaluated at Snapshot() time. The callback must be
  /// safe to invoke from any thread; it runs WITHOUT the registry lock held,
  /// so it may take unrelated locks (e.g. the DB mutex) freely.
  /// Re-registering an existing name replaces the callback.
  void RegisterCounterCallback(const std::string& name,
                               std::function<uint64_t()> fn);
  void RegisterGaugeCallback(const std::string& name,
                             std::function<double()> fn);
  void RegisterHistogramCallback(const std::string& name,
                                 std::function<Histogram()> fn);

  /// Bulk contributor evaluated at Snapshot() time, after the registry's
  /// own entries: appends arbitrarily many samples in one call. Used by
  /// ShardedDB to splice every shard's registry (prefixed per shard) plus
  /// cross-shard aggregates into the facade registry's snapshots without
  /// registering thousands of forwarding callbacks. Runs WITHOUT the
  /// registry lock held, same contract as the per-metric callbacks.
  void RegisterSnapshotProvider(
      std::function<void(std::vector<MetricSample>*)> fn);

  /// Consistent, name-sorted copy of every metric. Callback evaluation
  /// happens after the registry lock is released, so callbacks may take
  /// unrelated mutexes (e.g. the DB mutex) whose holders call GetCounter().
  MetricsSnapshot Snapshot(uint64_t now_nanos = 0) const;

  size_t NumMetrics() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    // Owned instruments (at most one set, matching `kind`).
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    // Pull callbacks (used when the owned instrument is null).
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<Histogram()> histogram_fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted by name
  std::vector<std::function<void(std::vector<MetricSample>*)>> providers_;
};

}  // namespace obs
}  // namespace pmblade

#endif  // PMBLADE_OBS_METRICS_H_
